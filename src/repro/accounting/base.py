"""Shared machinery for accounting baselines: usage extraction and binning."""

import numpy as np

from repro.hw import platform as hwplat
from repro.sim.clock import USEC, from_msec


def bin_step_trace(trace, t0, t1, dt):
    """Integrate a StepTrace into uniform bins; returns mean value per bin.

    Bin i covers [t0 + i*dt, t0 + (i+1)*dt).  O(segments + bins).
    """
    n_bins = int((t1 - t0) // dt)
    if n_bins <= 0:
        return np.zeros(0)
    end = t0 + n_bins * dt
    out = np.zeros(n_bins)
    for start, stop, value in trace.segments(t0, end):
        if value == 0.0:
            continue
        first = int((start - t0) // dt)
        last = int((stop - t0 - 1) // dt)
        if first == last:
            out[first] += value * (stop - start)
            continue
        first_edge = t0 + (first + 1) * dt
        out[first] += value * (first_edge - start)
        last_edge = t0 + last * dt
        out[last] += value * (stop - last_edge)
        if last - first > 1:
            out[first + 1:last] += value * dt
    return out / dt


def bin_owner_trace(trace, app_ids, t0, t1, dt):
    """Per-app busy fraction per bin from a core owner trace (-1 = idle)."""
    n_bins = int((t1 - t0) // dt)
    usages = {app_id: np.zeros(n_bins) for app_id in app_ids}
    if n_bins <= 0:
        return usages
    end = t0 + n_bins * dt
    for start, stop, value in trace.segments(t0, end):
        owner = int(value)
        if owner not in usages:
            continue
        out = usages[owner]
        first = int((start - t0) // dt)
        last = int((stop - t0 - 1) // dt)
        if first == last:
            out[first] += stop - start
            continue
        first_edge = t0 + (first + 1) * dt
        out[first] += first_edge - start
        last_edge = t0 + last * dt
        out[last] += stop - last_edge
        if last - first > 1:
            out[first + 1:last] += dt
    for app_id in usages:
        usages[app_id] /= dt
    return usages


class UsageExtractor:
    """Builds per-app, per-bin hardware usage arrays for one component.

    This is the "hardware usage tracked at the lowest software level and at
    very fine granularity" of the paper's favorable baseline implementation.
    For the NIC, usage optionally lingers for a tail-attribution window
    after an app's last activity, the way AppScope/Eprof charge tail energy
    to the most recent trigger.
    """

    def __init__(self, platform, component, tail_attr=from_msec(60)):
        self.platform = platform
        self.component = component
        self.tail_attr = tail_attr

    def usage(self, app_ids, t0, t1, dt):
        """dict app_id -> per-bin usage array (arbitrary linear units)."""
        comp = self.component
        if comp == hwplat.CPU:
            return self._cpu_usage(app_ids, t0, t1, dt)
        if comp in (hwplat.GPU, hwplat.DSP):
            device = self.platform.component(comp)
            return self._count_usage(device.usage_traces, app_ids, t0, t1, dt)
        if comp == hwplat.WIFI:
            usages = self._count_usage(
                self.platform.nic.usage_traces, app_ids, t0, t1, dt
            )
            return self._apply_tail(usages, dt)
        raise KeyError(comp)

    def _cpu_usage(self, app_ids, t0, t1, dt):
        totals = None
        for trace in self.platform.cpu.owner_traces:
            per_core = bin_owner_trace(trace, app_ids, t0, t1, dt)
            if totals is None:
                totals = per_core
            else:
                for app_id in app_ids:
                    totals[app_id] += per_core[app_id]
        return totals or {app_id: np.zeros(0) for app_id in app_ids}

    def _count_usage(self, traces, app_ids, t0, t1, dt):
        n_bins = int((t1 - t0) // dt)
        out = {}
        for app_id in app_ids:
            trace = traces.get(app_id)
            if trace is None:
                out[app_id] = np.zeros(n_bins)
            else:
                out[app_id] = bin_step_trace(trace, t0, t1, dt)
        return out

    def _apply_tail(self, usages, dt):
        """Let NIC usage linger: tail intervals are charged to recent users."""
        if self.tail_attr <= 0:
            return usages
        tail_bins = max(int(self.tail_attr // dt), 1)
        out = {}
        for app_id, usage in usages.items():
            if len(usage) == 0:
                out[app_id] = usage
                continue
            active = usage > 0
            indices = np.arange(len(usage))
            last_active = np.where(active, indices, -10 * tail_bins)
            last_active = np.maximum.accumulate(last_active)
            in_tail = (~active) & (indices - last_active <= tail_bins)
            lingering = np.where(in_tail, 1.0, 0.0)
            out[app_id] = usage + lingering
        return out


class AccountingBase:
    """Splits metered system power samples into per-app shares."""

    #: default sampling interval: 10 us, the paper's favorable setting.
    DEFAULT_DT = 10 * USEC

    def __init__(self, platform, component, dt=None, tail_attr=from_msec(60)):
        self.platform = platform
        self.component = component
        self.dt = dt or self.DEFAULT_DT
        self.extractor = UsageExtractor(platform, component,
                                        tail_attr=tail_attr)

    def shares(self, app_ids, t0, t1, dt=None):
        """Per-app attributed power: ``(times, {app_id: watts array})``."""
        dt = dt or self.dt
        n_bins = int((t1 - t0) // dt)
        end = t0 + n_bins * dt
        times, watts = self.platform.meter.sample(self.component, t0, end, dt)
        usage = self.extractor.usage(app_ids, t0, end, dt)
        return times, self._split(watts, usage, app_ids)

    def energies(self, app_ids, t0, t1, dt=None):
        """Per-app attributed energy in joules over [t0, t1)."""
        dt = dt or self.dt
        _times, shares = self.shares(app_ids, t0, t1, dt)
        return {
            app_id: float(np.sum(share)) * dt / 1e9
            for app_id, share in shares.items()
        }

    def _split(self, watts, usage, app_ids):
        raise NotImplementedError
