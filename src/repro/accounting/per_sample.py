"""Usage-proportional per-sample accounting — the paper's comparator [96]."""

import numpy as np

from repro.accounting.base import AccountingBase


class PerSampleUsageAccounting(AccountingBase):
    """Each power sample is divided among apps in proportion to their
    hardware usage within that sampling interval.

    Samples with no attributable usage (pure idle) belong to nobody — the
    favorable choice for the baseline, since charging idle power would only
    inflate its error further.
    """

    def _split(self, watts, usage, app_ids):
        total = np.zeros_like(watts)
        for app_id in app_ids:
            total += usage[app_id]
        shares = {}
        with np.errstate(divide="ignore", invalid="ignore"):
            for app_id in app_ids:
                fraction = np.where(total > 0, usage[app_id] / np.where(
                    total > 0, total, 1.0), 0.0)
                shares[app_id] = watts * fraction
        return shares
