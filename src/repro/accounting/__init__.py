"""Power accounting baselines — the "existing approach" the paper compares
against.

These mechanisms divide each *system* power sample among co-running apps
using heuristics, exactly as state-of-the-art accounting does; none of them
can undo power entanglement, which is the point of Section 2.3.

* :class:`PerSampleUsageAccounting` — the paper's comparator [96,
  AppScope-like]: every sample is split proportionally to per-app hardware
  usage within that sampling interval, tracked at the lowest software level
  and 10 us granularity ("implemented favorably").
* :class:`EvenSplitAccounting` — equal split among apps active in the
  interval [94].
* :class:`LastTriggerAccounting` — the whole sample goes to the most recent
  user of the hardware (Eprof-style tail attribution [70]).
* :class:`UtilizationAccounting` — power scaled by each app's absolute
  utilization; the residual stays unattributed [100].
"""

from repro.accounting.base import UsageExtractor, bin_step_trace
from repro.accounting.display import PixelAccounting
from repro.accounting.even_split import EvenSplitAccounting
from repro.accounting.incident import attribute_window, hold_resample, top_entity
from repro.accounting.last_trigger import LastTriggerAccounting
from repro.accounting.model_metering import LinearPowerModel
from repro.accounting.per_sample import PerSampleUsageAccounting
from repro.accounting.shapley import ShapleyAccounting
from repro.accounting.utilization import UtilizationAccounting

__all__ = [
    "EvenSplitAccounting",
    "LastTriggerAccounting",
    "LinearPowerModel",
    "PerSampleUsageAccounting",
    "PixelAccounting",
    "ShapleyAccounting",
    "UsageExtractor",
    "UtilizationAccounting",
    "attribute_window",
    "bin_step_trace",
    "hold_resample",
    "top_entity",
]
