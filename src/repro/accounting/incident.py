"""Offline incident-window attribution over exported series.

The live accounting baselines (:class:`~repro.accounting.per_sample
.PerSampleUsageAccounting` and friends) run against a platform's meter and
usage traces.  The explain engine has neither — it holds *exported* series:
a total-power signal and per-entity signals (per-tenant measured watts, or
per-leaf measured watts) read back from a telemetry bundle or a flight
dump.  This module bridges the two: it resamples those point series onto a
uniform bin grid and then runs the very same ``_split`` policies over them,
so an incident report's "who caused this" table uses the paper's
attribution semantics, not an ad-hoc reimplementation.

``attribute_window`` answers: over the incident window, which entities do
the per-sample / even-split / last-trigger policies hold responsible for
the total draw, and for how many joules each?
"""

import numpy as np

from repro.accounting.even_split import EvenSplitAccounting
from repro.accounting.last_trigger import LastTriggerAccounting
from repro.accounting.per_sample import PerSampleUsageAccounting

#: the policies an incident report ranks by (name -> unbound _split).
#: The _split laws are pure functions of (watts, usage, entities) — none
#: touches self — so they run fine over offline arrays with self=None.
POLICIES = {
    "per_sample": PerSampleUsageAccounting._split,
    "even_split": EvenSplitAccounting._split,
    "last_trigger": LastTriggerAccounting._split,
}


def hold_resample(points, grid):
    """Previous-hold values of a ``[(t_ns, value), ...]`` series on ``grid``.

    Before the first sample the value is 0.0 (the series did not exist
    yet); after the last it holds — matching StepTrace semantics for
    sampled signals.
    """
    out = np.zeros(len(grid))
    if not points:
        return out
    times = np.array([t for t, _v in points], dtype=float)
    values = np.array([v for _t, v in points], dtype=float)
    idx = np.searchsorted(times, np.asarray(grid, dtype=float), side="right")
    have = idx > 0
    out[have] = values[idx[have] - 1]
    return out


def attribute_window(total_points, entity_points, t0_ns, t1_ns, n_bins=24):
    """Run every accounting policy over one incident window.

    ``total_points`` is the aggregate-power series (``[(t_ns, w), ...]``);
    ``entity_points`` maps entity name (tenant, leaf) to its own measured
    series.  Returns a dict::

        {"t0_ns": ..., "t1_ns": ..., "bins": n, "dt_ns": ...,
         "policies": {policy: [{"entity", "energy_j", "share"}, ...]}}

    with each policy's entity list ranked by attributed energy (ties
    broken by name, so reports are deterministic).
    """
    t0_ns = int(t0_ns)
    t1_ns = int(t1_ns)
    entities = sorted(entity_points)
    if t1_ns <= t0_ns or n_bins < 1 or not entities:
        return {"t0_ns": t0_ns, "t1_ns": t1_ns, "bins": 0, "dt_ns": 0,
                "policies": {name: [] for name in POLICIES}}
    dt_ns = (t1_ns - t0_ns) / n_bins
    # bin midpoints: a hold-resample at the midpoint is the bin's value
    grid = t0_ns + dt_ns * (np.arange(n_bins) + 0.5)
    watts = hold_resample(total_points, grid)
    usage = {name: hold_resample(entity_points[name], grid)
             for name in entities}
    dt_s = dt_ns / 1e9
    out = {"t0_ns": t0_ns, "t1_ns": t1_ns, "bins": n_bins,
           "dt_ns": int(dt_ns), "policies": {}}
    for policy, split in POLICIES.items():
        shares = split(None, watts, usage, entities)
        total_j = sum(float(np.sum(s)) * dt_s for s in shares.values())
        ranked = []
        for name in entities:
            energy = float(np.sum(shares[name])) * dt_s
            ranked.append({
                "entity": name,
                "energy_j": round(energy, 9),
                "share": round(energy / total_j, 6) if total_j > 0 else 0.0,
            })
        ranked.sort(key=lambda row: (-row["energy_j"], row["entity"]))
        out["policies"][policy] = ranked
    return out


def top_entity(attribution, policy="per_sample"):
    """The top-ranked entity under ``policy``, or None (empty window)."""
    ranked = attribution["policies"].get(policy) or []
    return ranked[0]["entity"] if ranked else None
