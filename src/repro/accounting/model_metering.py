"""Model-based power metering (§2.2's *other* metering method).

Most prior work infers power from software-visible activity through linear
models fitted at development time (AppScope, Eprof, PowerTutor, ...).  This
implements that approach against our platform: per-bin utilization features
-> fitted linear model -> estimated power.  Two of the paper's points fall
out of it:

* modeling error grows on modern hardware (DVFS, shared static power,
  overlap sub-additivity make power non-linear in utilization), and
* even a *perfect* model would not help app power awareness, because it
  estimates the same entangled system power that direct measurement meters
  (§2.3) — attribution still fails.
"""

import numpy as np

from repro.accounting.base import UsageExtractor
from repro.sim.clock import MSEC


class LinearPowerModel:
    """``P ~= beta0 + sum_i beta_i * utilization_i`` fitted by least squares.

    Features are the per-app usage arrays of a component, plus the total
    usage — the aggregate-activity features real model-based meters use.
    """

    def __init__(self, platform, component, dt=MSEC):
        self.platform = platform
        self.component = component
        self.dt = dt
        self.extractor = UsageExtractor(platform, component, tail_attr=0)
        self.coefficients = None

    def _features(self, app_ids, t0, t1):
        usage = self.extractor.usage(app_ids, t0, t1, self.dt)
        columns = [usage[app_id] for app_id in app_ids]
        total = np.sum(columns, axis=0) if columns else np.zeros(0)
        n = len(total)
        return np.column_stack([np.ones(n)] + columns + [total])

    def fit(self, app_ids, t0, t1):
        """Fit the model against the metered rail over a training window."""
        features = self._features(app_ids, t0, t1)
        n = features.shape[0]
        _times, watts = self.platform.meter.sample(
            self.component, t0, t0 + n * self.dt, self.dt
        )
        self.coefficients, *_rest = np.linalg.lstsq(features, watts,
                                                    rcond=None)
        return self

    def predict(self, app_ids, t0, t1):
        """Estimated power per bin over [t0, t1)."""
        if self.coefficients is None:
            raise RuntimeError("fit() the model first")
        features = self._features(app_ids, t0, t1)
        return features @ self.coefficients

    def rmse(self, app_ids, t0, t1):
        """Root-mean-square modeling error against the real rail, watts."""
        predicted = self.predict(app_ids, t0, t1)
        n = len(predicted)
        _times, watts = self.platform.meter.sample(
            self.component, t0, t0 + n * self.dt, self.dt
        )
        return float(np.sqrt(np.mean((predicted - watts) ** 2)))

    def mean_power_error_pct(self, app_ids, t0, t1):
        """Relative error of the estimated mean power, percent."""
        predicted = self.predict(app_ids, t0, t1)
        n = len(predicted)
        _times, watts = self.platform.meter.sample(
            self.component, t0, t0 + n * self.dt, self.dt
        )
        actual = float(watts.mean())
        return 100.0 * abs(float(predicted.mean()) - actual) / actual
