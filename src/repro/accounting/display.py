"""Display accounting: exact per-pixel division (§7, item 1).

OLED panels are free of power entanglement, so this is the one component
where the classic divide-the-power approach is *correct*: the OS divides
display power among apps by the pixels each produces, and the result
matches the ground truth exactly.
"""


class PixelAccounting:
    """Divides display energy among apps by their surface power."""

    def __init__(self, platform):
        if platform.display is None:
            raise ValueError("platform has no display")
        self.platform = platform

    def energies(self, app_ids, t0, t1):
        """Per-app display energy in joules over [t0, t1).

        Exact by construction — the display's per-surface traces *are* the
        physical decomposition.
        """
        return {
            app_id: self.platform.display.app_energy(app_id, t0, t1)
            for app_id in app_ids
        }

    def unattributed(self, app_ids, t0, t1):
        """Base-panel energy no app is responsible for."""
        total = self.platform.rails["display"].energy(t0, t1)
        return total - sum(self.energies(app_ids, t0, t1).values())
