"""Even-split accounting: active apps share each sample equally [94]."""

import numpy as np

from repro.accounting.base import AccountingBase


class EvenSplitAccounting(AccountingBase):
    """Each sample is split evenly among the apps with any usage in the
    interval, regardless of how much hardware each actually consumed."""

    def _split(self, watts, usage, app_ids):
        active = {app_id: usage[app_id] > 0 for app_id in app_ids}
        count = np.zeros_like(watts)
        for app_id in app_ids:
            count += active[app_id]
        shares = {}
        for app_id in app_ids:
            fraction = np.where(count > 0,
                                active[app_id] / np.where(count > 0, count, 1.0),
                                0.0)
            shares[app_id] = watts * fraction
        return shares
