"""Last-trigger accounting: each sample goes to the most recent user [70].

Eprof-style: lingering (tail) power is attributed to the entity that
triggered it last.  Implemented per sampling interval: the app whose
activity is most recent as of the interval owns the whole sample.
"""

import numpy as np

from repro.accounting.base import AccountingBase


class LastTriggerAccounting(AccountingBase):
    def _split(self, watts, usage, app_ids):
        n_bins = len(watts)
        last_seen = {}
        for app_id in app_ids:
            active = usage[app_id] > 0
            indices = np.arange(n_bins)
            seen = np.where(active, indices, -1)
            last_seen[app_id] = np.maximum.accumulate(seen)
        stack = np.stack([last_seen[app_id] for app_id in app_ids])
        winner = np.argmax(stack, axis=0)
        any_seen = np.max(stack, axis=0) >= 0
        shares = {}
        for pos, app_id in enumerate(app_ids):
            mask = any_seen & (winner == pos)
            shares[app_id] = np.where(mask, watts, 0.0)
        return shares
