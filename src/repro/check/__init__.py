"""Runtime invariant checking (`repro.check`).

Attach an :class:`InvariantChecker` to a kernel to machine-check the
paper's guarantees — balloon exclusivity, vruntime monotonicity, loan and
energy conservation, vstate restore correctness, liveness, powercap cap
compliance — on every event and on a periodic sweep, while the simulation
runs.  See ``docs/TESTING.md`` for how to add an invariant.
"""

from repro.check.checker import CheckerConfig, InvariantChecker
from repro.check.report import CheckReport, CheckViolation, Violation

__all__ = [
    "CheckerConfig",
    "CheckReport",
    "CheckViolation",
    "InvariantChecker",
    "Violation",
]
