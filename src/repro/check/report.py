"""Violation records and check reports."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Violation:
    """One invariant breach: when, which rule, and who is responsible."""

    t: int                # sim time of detection (ns)
    invariant: str        # e.g. "balloon_exclusivity"
    component: str        # responsible component ("smp", "gpu", "governor.cpu"...)
    event: str            # the triggering event/check ("cosched_tick", "switch"...)
    message: str

    def __str__(self):
        return "[t={} ns] {} on {} ({}): {}".format(
            self.t, self.invariant, self.component, self.event, self.message
        )


class CheckViolation(AssertionError):
    """Raised in strict mode on the first violation."""

    def __init__(self, violation):
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class CheckReport:
    """Accumulated outcome of one checked run."""

    violations: list = field(default_factory=list)
    checks: int = 0           # individual assertions evaluated
    max_violations: int = 1000

    @property
    def ok(self):
        return not self.violations

    def count(self, invariant=None):
        if invariant is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.invariant == invariant)

    def by_invariant(self):
        """Violation counts keyed by invariant name."""
        out = {}
        for violation in self.violations:
            out[violation.invariant] = out.get(violation.invariant, 0) + 1
        return out

    def summary(self):
        if self.ok:
            return "OK ({} checks)".format(self.checks)
        parts = ", ".join(
            "{}x {}".format(n, name)
            for name, n in sorted(self.by_invariant().items())
        )
        return "{} violations ({} checks): {}".format(
            len(self.violations), self.checks, parts
        )
