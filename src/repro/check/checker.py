"""Runtime invariant checking over a live kernel.

The :class:`InvariantChecker` is an event-bus observer: it subscribes to the
kernel's scheduling/governor :class:`~repro.sim.trace.EventTrace` logs and
runs a cheap periodic sweep, asserting the paper's guarantees while the
simulation runs:

* **balloon exclusivity** — no foreign entity runs inside an active spatial
  balloon (CPU) or temporal balloon window (accelerators, NIC);
* **vruntime monotonicity** — CFS entity and member vruntimes never move
  backwards (credits are only ever consumed or repaid, never refunded);
* **loan conservation** — balloon loans are split evenly and repay at least
  the borrowed total (§4.2 step 5);
* **energy conservation** — per component, observation windows are pairwise
  disjoint across sandboxes, the window-attributed energy never exceeds the
  rail's physical energy (Σ per-psbox + unattributed ≈ rail), and each
  sandbox's billed reading equals window energy plus idle fill;
* **vstate restore correctness** — a governor context switch programs
  exactly the saved (clamped) OPP;
* **liveness** — IPI shootdowns complete and drain phases converge within
  configurable bounds (this is what detects dropped IPIs / stuck drains);
* **powercap cap compliance** — opt-in via :meth:`watch_powercap`.

The checker is read-only: it never mutates kernel state and draws no RNG,
so an attached checker leaves the simulated schedule bit-identical (its own
events interleave without reordering anyone else's).  Overhead is opt-in —
nothing runs unless ``attach()`` is called.
"""

from dataclasses import dataclass

from repro.sim.clock import from_msec
from repro.check.report import CheckReport, CheckViolation, Violation
from repro.obs import flight

SERVE = "serve"


@dataclass
class CheckerConfig:
    """Cadence and tolerances of the invariant sweep."""

    tick: int = from_msec(5)             # periodic sweep period
    window: int = from_msec(25)          # energy/cap check granularity
    energy_rel_tol: float = 1e-6         # conservation slack, relative to rail
    energy_abs_tol_j: float = 1e-9
    vruntime_eps: float = 1e-6
    loan_eps: float = 1e-3
    shootdown_bound: int = from_msec(2)  # IPI pending beyond this = stuck
    accel_drain_bound: int = from_msec(100)
    net_drain_bound: int = from_msec(1000)
    cap_tolerance: float = 0.10          # allowed overshoot fraction
    cap_settle: int = from_msec(1500)    # grace before cap checks begin


class InvariantChecker:
    """Attachable runtime verifier for one kernel."""

    SKIP_COMPONENTS = ("display", "gps")   # §7 special rules, no windows

    def __init__(self, kernel, config=None, strict=False):
        self.kernel = kernel
        self.sim = kernel.sim
        self.config = config or CheckerConfig()
        self.strict = strict
        self.report = CheckReport()
        self.attached = False
        self._subscriptions = []     # (trace, fn) pairs for detach
        self._tick_event = None
        self._event_check_pending = False
        self._entity_vr = {}         # (app_id, core_id) -> last vruntime
        self._member_vr = {}         # task id -> last member_vruntime
        self._drain_since = {}       # scheduler name -> drain phase start t
        self._flagged_cosched = set()
        self._energy_checked_to = 0
        self._powercap = None        # (controller, tolerance, settle)
        self._cap_checked_to = None

    # -- lifecycle ------------------------------------------------------------

    def attach(self):
        """Start observing; returns self."""
        if self.attached:
            return self
        self.attached = True
        kernel = self.kernel
        if kernel.smp is not None:
            self._subscribe(kernel.smp.log, self._on_smp_record)
        for sched, bound in (
            (kernel.gpu_sched, self.config.accel_drain_bound),
            (kernel.dsp_sched, self.config.accel_drain_bound),
            (kernel.net_sched, self.config.net_drain_bound),
            (kernel.lte_sched, self.config.net_drain_bound),
        ):
            if sched is not None:
                self._subscribe(sched.log, self._device_handler(sched, bound))
        for governor in (kernel.cpu_governor, kernel.gpu_governor):
            if governor is not None:
                self._subscribe(governor.log, self._governor_handler(governor))
        self._energy_checked_to = self.sim.now
        self._tick_event = self.sim.call_later(self.config.tick, self._tick)
        return self

    def detach(self):
        """Stop observing (the report stays available)."""
        if not self.attached:
            return
        self.attached = False
        for trace, fn in self._subscriptions:
            trace.unsubscribe(fn)
        self._subscriptions = []
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def watch_powercap(self, controller, tolerance=None, settle=None):
        """Also assert the controller's root cap on rolling windows."""
        self._powercap = (
            controller,
            self.config.cap_tolerance if tolerance is None else tolerance,
            self.config.cap_settle if settle is None else settle,
        )
        return self

    def _subscribe(self, trace, fn):
        trace.subscribe(fn)
        self._subscriptions.append((trace, fn))

    # -- violation plumbing ---------------------------------------------------

    def _flag(self, invariant, component, event, message):
        violation = Violation(self.sim.now, invariant, component, event,
                              message)
        if len(self.report.violations) < self.report.max_violations:
            self.report.violations.append(violation)
        obs = self.sim.obs
        if obs is not None:
            obs.tracer.instant("violation." + invariant, cat="check",
                               track="check", component=component,
                               event=event, message=message)
            obs.metrics.inc("check.violations")
            obs.metrics.inc("check.violations." + invariant)
        if flight._recorder is not None:
            flight._recorder.on_violation(violation, sim=self.sim)
        if self.strict:
            raise CheckViolation(violation)

    # -- event handlers -------------------------------------------------------

    def _on_smp_record(self, t, kind, payload):
        if kind == "loan_redistribution":
            self._check_loan_conservation(t, payload)
        elif kind in ("cosched_begin", "cosched_end"):
            self._schedule_event_check()

    @staticmethod
    def _sched_name(sched):
        name = getattr(sched, "name", None)   # accel scheds carry a name
        return name if name is not None else sched.nic.name

    def _device_handler(self, sched, bound):
        name = self._sched_name(sched)

        def handler(t, kind, payload):
            if kind in ("drain_others", "drain_psbox"):
                self._drain_since[name] = t
            elif kind in ("window_open", "window_close"):
                since = self._drain_since.pop(name, None)
                self.report.checks += 1
                if since is not None and t - since > bound:
                    self._flag(
                        "drain_liveness", name, kind,
                        "drain took {:.1f} ms (bound {:.1f} ms)".format(
                            (t - since) / 1e6, bound / 1e6
                        ),
                    )
                self._schedule_event_check()
        return handler

    def _governor_handler(self, governor):
        name = "governor." + governor.domain.name

        def handler(t, kind, payload):
            if kind != "switch":
                return
            self.report.checks += 1
            if payload["actual"] != payload["expected"]:
                self._flag(
                    "vstate_restore", name, "switch",
                    "context {!r} restored OPP {} but hardware is at "
                    "{}".format(payload["key"], payload["expected"],
                                payload["actual"]),
                )
        return handler

    def _schedule_event_check(self):
        """Coalesce per-event state checks to the end of the cascade."""
        if self._event_check_pending or not self.attached:
            return
        self._event_check_pending = True
        self.sim.call_soon(self._event_check)

    def _event_check(self):
        self._event_check_pending = False
        if not self.attached:
            return
        self._check_exclusivity()
        self._check_vruntime_monotonic()

    # -- the periodic sweep ---------------------------------------------------

    def _tick(self):
        self._tick_event = self.sim.call_later(self.config.tick, self._tick)
        self._check_exclusivity()
        self._check_vruntime_monotonic()
        self._check_shootdown_liveness()
        self._check_stuck_drains()
        now = self.sim.now
        if now - self._energy_checked_to >= self.config.window:
            self._check_energy_conservation(self._energy_checked_to, now)
            self._energy_checked_to = now
        self._check_cap_compliance()

    # -- invariants -----------------------------------------------------------

    def _check_loan_conservation(self, t, payload):
        self.report.checks += 1
        eps = self.config.loan_eps
        shares = payload["shares"]
        repaid = sum(shares)
        if repaid + eps < payload["total"]:
            self._flag(
                "loan_conservation", "smp", "loan_redistribution",
                "app {} repaid {:.3f} of a {:.3f} loan".format(
                    payload["app"], repaid, payload["total"]
                ),
            )
        if max(shares) - min(shares) > eps:
            self._flag(
                "loan_conservation", "smp", "loan_redistribution",
                "app {} loan shares not even: {}".format(
                    payload["app"], shares
                ),
            )

    def _check_exclusivity(self):
        kernel = self.kernel
        smp = kernel.smp
        if smp is not None:
            cosched = smp.active_cosched
            if cosched is not None:
                self.report.checks += 1
                for sched in smp.cores:
                    if sched.core.id in cosched.pending_cores:
                        continue   # shootdown still in flight: leak is legal
                    current = sched.current
                    if current is not None and current.group is not cosched.group:
                        self._flag(
                            "balloon_exclusivity", "smp", "cosched",
                            "core {} runs app {} inside app {}'s spatial "
                            "balloon".format(
                                sched.core.id, current.group.app.id,
                                cosched.group.app.id,
                            ),
                        )
        for sched in (kernel.gpu_sched, kernel.dsp_sched):
            if sched is None or sched.state != SERVE:
                continue
            self.report.checks += 1
            foreign = [
                app_id for app_id in sched.engine.inflight_apps()
                if app_id != sched.psbox_app.id
            ]
            if foreign:
                self._flag(
                    "balloon_exclusivity", sched.name, "serve",
                    "apps {} in flight inside app {}'s window".format(
                        sorted(set(foreign)), sched.psbox_app.id
                    ),
                )
        for sched in (kernel.net_sched, kernel.lte_sched):
            if sched is None or sched.state != SERVE:
                continue
            self.report.checks += 1
            foreign = [
                app_id for app_id in sched.nic.inflight_apps()
                if app_id != sched.psbox_app.id
            ]
            if foreign:
                self._flag(
                    "balloon_exclusivity", sched.nic.name, "serve",
                    "apps {} transmitting inside app {}'s window".format(
                        sorted(set(foreign)), sched.psbox_app.id
                    ),
                )

    def _check_vruntime_monotonic(self):
        smp = self.kernel.smp
        if smp is None:
            return
        self.report.checks += 1
        eps = self.config.vruntime_eps
        for group in smp.groups.values():
            for entity in group.entities:
                key = (group.app.id, entity.core_id)
                last = self._entity_vr.get(key)
                if last is not None and entity.vruntime < last - eps:
                    self._flag(
                        "vruntime_monotonic", "cfs", "entity",
                        "app {} core {} vruntime moved back "
                        "{:.3f} -> {:.3f}".format(
                            group.app.id, entity.core_id, last,
                            entity.vruntime,
                        ),
                    )
                self._entity_vr[key] = entity.vruntime
        for task in self.kernel.tasks:
            last = self._member_vr.get(task.id)
            if last is not None and task.member_vruntime < last - eps:
                self._flag(
                    "vruntime_monotonic", "cfs", "member",
                    "task {} member vruntime moved back "
                    "{:.3f} -> {:.3f}".format(
                        task.name, last, task.member_vruntime
                    ),
                )
            self._member_vr[task.id] = task.member_vruntime

    def _check_shootdown_liveness(self):
        smp = self.kernel.smp
        if smp is None:
            return
        cosched = smp.active_cosched
        if cosched is None or not cosched.pending_cores:
            return
        self.report.checks += 1
        waited = self.sim.now - cosched.started_at
        # Dedup by the episode's stable identity, not id(): CPython reuses
        # addresses, so a later cosched could collide with a flagged one and
        # go unreported — nondeterministically, since allocation layout
        # varies per process.
        episode = (cosched.group.app.id, cosched.started_at)
        if waited > self.config.shootdown_bound \
                and episode not in self._flagged_cosched:
            self._flagged_cosched.add(episode)
            self._flag(
                "shootdown_liveness", "smp", "cosched",
                "cores {} have not honoured app {}'s shootdown IPI after "
                "{:.2f} ms".format(
                    sorted(cosched.pending_cores), cosched.group.app.id,
                    waited / 1e6,
                ),
            )

    def _check_stuck_drains(self):
        kernel = self.kernel
        now = self.sim.now
        for sched, bound in (
            (kernel.gpu_sched, self.config.accel_drain_bound),
            (kernel.dsp_sched, self.config.accel_drain_bound),
            (kernel.net_sched, self.config.net_drain_bound),
            (kernel.lte_sched, self.config.net_drain_bound),
        ):
            if sched is None:
                continue
            name = self._sched_name(sched)
            since = self._drain_since.get(name)
            if since is None:
                continue
            self.report.checks += 1
            if now - since > bound:
                self._drain_since[name] = None   # flag each episode once
                self._flag(
                    "drain_liveness", name, sched.state,
                    "drain stuck for {:.1f} ms (bound {:.1f} ms)".format(
                        (now - since) / 1e6, bound / 1e6
                    ),
                )

    def _check_energy_conservation(self, t0, t1):
        manager = getattr(self.kernel, "psbox_manager", None)
        if manager is None or t1 <= t0:
            return
        platform = self.kernel.platform
        for comp, rail in platform.rails.items():
            if comp in self.SKIP_COMPONENTS:
                continue
            boxes = manager.boxes_bound_to(comp)
            if not boxes:
                continue
            self.report.checks += 1
            rail_j = rail.energy(t0, t1)
            tol = abs(rail_j) * self.config.energy_rel_tol \
                + self.config.energy_abs_tol_j
            # Windows of *different* sandboxes must never overlap: one
            # joule of rail energy is attributable to at most one psbox.
            spans = []
            attributed = 0.0
            for box in boxes:
                joules, covered = box.vmeter.windowed_energy(comp, t0, t1)
                attributed += joules
                for lo, hi in box.vmeter.windows(comp, t0, t1):
                    spans.append((lo, hi, box.app.id))
                # The sandbox's billed reading must be exactly its window
                # share plus idle fill — no energy invented or lost.
                billed = box.vmeter.energy(t0, t1, component=comp)
                idle_j = platform.idle_power(comp) \
                    * (t1 - t0 - covered) / 1e9
                if abs(billed - (joules + idle_j)) > tol:
                    self._flag(
                        "energy_conservation", comp, "billing",
                        "app {} billed {:.9f} J but windows+idle give "
                        "{:.9f} J".format(box.app.id, billed,
                                          joules + idle_j),
                    )
            spans.sort()
            for (a0, a1, app_a), (b0, b1, app_b) in zip(spans, spans[1:]):
                if b0 < a1:
                    self._flag(
                        "energy_conservation", comp, "windows",
                        "windows of apps {} and {} overlap "
                        "[{}, {}) vs [{}, {})".format(
                            app_a, app_b, a0, a1, b0, b1
                        ),
                    )
            if attributed > rail_j + tol:
                self._flag(
                    "energy_conservation", comp, "attribution",
                    "windows attribute {:.9f} J but the rail only drew "
                    "{:.9f} J (unattributed would be negative)".format(
                        attributed, rail_j
                    ),
                )

    def _check_cap_compliance(self):
        if self._powercap is None:
            return
        controller, tolerance, settle = self._powercap
        root = controller.tree.root
        now = self.sim.now
        if not controller.running or root.cap_w is None or now < settle:
            return
        if self._cap_checked_to is None:
            self._cap_checked_to = now
            return
        if now - self._cap_checked_to < self.config.window:
            return
        t0, self._cap_checked_to = self._cap_checked_to, now
        self.report.checks += 1
        aggregate = controller.aggregate_power(t0, now)
        if aggregate > root.cap_w * (1.0 + tolerance):
            self._flag(
                "cap_compliance", "powercap", "aggregate",
                "aggregate {:.3f} W exceeds cap {:.3f} W (+{:.0f}% "
                "tolerance) over [{}, {})".format(
                    aggregate, root.cap_w, tolerance * 100, t0, now
                ),
            )
