"""Multicore CPU cluster: cores, work execution, and rail power.

The cluster owns one shared frequency domain (Cortex-A15-style) and one
power rail.  Cores execute *work items* measured in cycles; completion times
track DVFS changes exactly (re-derived from the frequency trace), so the
kernel scheduler never needs to know about frequency switches.
"""

from repro.sim.clock import SEC


class WorkItem:
    """A compute burst measured in CPU cycles."""

    __slots__ = ("cycles", "done", "on_complete")

    def __init__(self, cycles, on_complete=None):
        if cycles <= 0:
            raise ValueError("work item must have positive cycles")
        self.cycles = float(cycles)
        self.done = 0.0
        self.on_complete = on_complete

    @property
    def remaining(self):
        return max(self.cycles - self.done, 0.0)


class CpuCore:
    """One CPU core: runs at most one work item at a time.

    The scheduler assigns work via :meth:`start` and revokes it via
    :meth:`preempt`.  The core tracks busy/owner state for the power model
    and the accounting baselines.
    """

    def __init__(self, sim, cluster, core_id):
        self.sim = sim
        self.cluster = cluster
        self.id = core_id
        self.work = None
        self.owner_id = None
        self._run_start = None
        self._completion_event = None
        cluster.freq_domain.changed.subscribe(self._on_freq_change)

    @property
    def busy(self):
        return self.work is not None

    def start(self, owner_id, work):
        """Begin executing ``work`` on behalf of ``owner_id`` (an app id)."""
        if self.work is not None:
            raise RuntimeError("core {} already busy".format(self.id))
        self.work = work
        self.owner_id = owner_id
        self._run_start = self.sim.now
        self._schedule_completion()
        self.cluster.note_activity(self)

    def preempt(self):
        """Stop the current work item; returns it with progress updated."""
        if self.work is None:
            return None
        self._settle_progress()
        work = self.work
        self._clear()
        return work

    def _clear(self):
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        self.work = None
        self.owner_id = None
        self._run_start = None
        self.cluster.note_activity(self)

    def _settle_progress(self):
        now = self.sim.now
        if self.work is not None and now > self._run_start:
            domain = self.cluster.freq_domain
            self.work.done += domain.cycles_between(self._run_start, now)
            self._run_start = now

    def _schedule_completion(self):
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        remaining = self.work.remaining
        if remaining <= 0:
            self._completion_event = self.sim.call_soon(self._complete)
            return
        freq = self.cluster.freq_domain.freq_hz
        delay = max(int(remaining / freq * SEC), 1)
        self._completion_event = self.sim.call_later(delay, self._complete)

    def _complete(self):
        self._settle_progress()
        if self.work is None:
            return
        if self.work.remaining > 1e-6:
            # Frequency dropped since the event was scheduled; re-derive.
            self._schedule_completion()
            return
        work = self.work
        self._clear()
        if work.on_complete is not None:
            work.on_complete(self)

    def _on_freq_change(self, _opp):
        if self.work is None:
            return
        self._settle_progress()
        self._schedule_completion()


class CpuCluster:
    """A set of cores sharing one frequency domain and one power rail."""

    def __init__(self, sim, rail, freq_domain, power_model, n_cores=2, name="cpu"):
        from repro.sim.trace import StepTrace

        self.sim = sim
        self.name = name
        self.rail = rail
        self.freq_domain = freq_domain
        self.power_model = power_model
        self.cores = [CpuCore(sim, self, i) for i in range(n_cores)]
        # Per-core busy (0/1) and owner (-1 = idle) traces for the governor
        # and for the accounting baselines.
        self.busy_traces = [
            StepTrace(0.0, name="{}.core{}.busy".format(name, i))
            for i in range(n_cores)
        ]
        self.owner_traces = [
            StepTrace(-1.0, name="{}.core{}.owner".format(name, i))
            for i in range(n_cores)
        ]
        freq_domain.changed.subscribe(lambda _opp: self._update_power())
        self._update_power()

    @property
    def n_cores(self):
        return len(self.cores)

    def note_activity(self, core):
        """A core's busy/owner state changed; refresh traces and rail power."""
        now = self.sim.now
        self.busy_traces[core.id].set(now, 1.0 if core.busy else 0.0)
        owner = core.owner_id if core.owner_id is not None else -1
        self.owner_traces[core.id].set(now, float(owner))
        self._update_power()

    def _update_power(self):
        n_active = sum(1 for core in self.cores if core.busy)
        watts = self.power_model.rail_power(self.freq_domain.opp, n_active)
        self.rail.set_part(self.name, watts)

    def utilization(self, t0, t1):
        """Mean fraction of busy core-time over [t0, t1)."""
        if t1 <= t0:
            return 0.0
        busy = sum(trace.integrate(t0, t1) for trace in self.busy_traces)
        return busy / ((t1 - t0) * self.n_cores)

    def max_core_utilization(self, t0, t1):
        """Busy fraction of the busiest core over [t0, t1).

        This is what an ondemand-style governor keys on: a single saturated
        core must raise the shared clock even if siblings idle.
        """
        if t1 <= t0:
            return 0.0
        return max(
            trace.integrate(t0, t1) / (t1 - t0) for trace in self.busy_traces
        )
