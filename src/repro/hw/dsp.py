"""DSP model (TI C66x-shaped multicore DSP driven over a command queue)."""

from repro.hw.accel import CommandEngine
from repro.hw.dvfs import FreqDomain
from repro.hw.power import AccelPowerModel, OperatingPoint
from repro.sim.clock import from_usec


def default_dsp_opps():
    return (
        OperatingPoint(400e6, core_active_w=0.0, uncore_w=0.0, static_w=0.02),
        OperatingPoint(750e6, core_active_w=0.0, uncore_w=0.0, static_w=0.05),
    )


class Dsp(CommandEngine):
    """A two-core DSP executing offloaded kernels (sgemm, dgemm, ...).

    DSP kernels are long (tens to hundreds of ms), which is why the paper
    measures ~100 ms extra dispatch latency for temporal-balloon draining on
    the DSP: draining must wait for the longest outstanding kernel.
    """

    def __init__(self, sim, rail, power_model=None, opps=None, name="dsp"):
        opps = opps or default_dsp_opps()
        freq_domain = FreqDomain(sim, name, opps, initial_index=len(opps) - 1)
        power_model = power_model or AccelPowerModel(
            opps=tuple(opps), idle_w=0.02, overlap_factors=(1.0, 0.85)
        )
        super().__init__(
            sim,
            rail,
            freq_domain,
            power_model,
            name=name,
            parallelism=2,
            parallel_efficiency=(1.0, 1.8),
            completion_delay=from_usec(300),
        )
