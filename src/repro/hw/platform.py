"""Platform assembly: simulator + rails + components + meter.

``Platform.am57()`` mirrors the paper's AM57EVM prototype (2x Cortex-A15,
SGX544-like GPU, C66x-like DSP); ``Platform.bbb()`` mirrors the BeagleBone
Black + WiLink8 WiFi prototype.  ``Platform.full()`` carries all four
components on one board for convenience.
"""

from repro.hw.cpu import CpuCluster
from repro.hw.display import OledDisplay
from repro.hw.dsp import Dsp
from repro.hw.dvfs import FreqDomain
from repro.hw.gps import Gps
from repro.hw.gpu import Gpu
from repro.hw.lte import LteNic
from repro.hw.meter import PowerMeter
from repro.hw.nic import WifiNic
from repro.hw.power import CpuPowerModel, NicPowerModel
from repro.hw.rail import PowerRail
from repro.sim.engine import Simulator

CPU = "cpu"
GPU = "gpu"
DSP = "dsp"
WIFI = "wifi"
DISPLAY = "display"
GPS = "gps"
LTE = "lte"

#: the four components of the paper's prototypes
COMPONENTS = (CPU, GPU, DSP, WIFI)
#: plus the §7 extension hardware
EXTENDED_COMPONENTS = COMPONENTS + (DISPLAY, GPS, LTE)


class Platform:
    """A simulated board: components, one rail per component, one meter."""

    def __init__(self, sim, components=COMPONENTS, n_cpu_cores=2):
        self.sim = sim
        self.rails = {}
        self.cpu = None
        self.gpu = None
        self.dsp = None
        self.nic = None
        self.display = None
        self.gps = None
        self.lte = None

        if CPU in components:
            rail = self._add_rail(CPU)
            domain = FreqDomain(sim, CPU, CpuPowerModel().opps, initial_index=0)
            self.cpu = CpuCluster(
                sim, rail, domain, CpuPowerModel(), n_cores=n_cpu_cores
            )
        if GPU in components:
            self.gpu = Gpu(sim, self._add_rail(GPU))
        if DSP in components:
            self.dsp = Dsp(sim, self._add_rail(DSP))
        if WIFI in components:
            self.nic = WifiNic(sim, self._add_rail(WIFI), NicPowerModel())
        if DISPLAY in components:
            self.display = OledDisplay(sim, self._add_rail(DISPLAY))
        if GPS in components:
            self.gps = Gps(sim, self._add_rail(GPS))
        if LTE in components:
            self.lte = LteNic(sim, self._add_rail(LTE))

        self.meter = PowerMeter(sim, self.rails,
                                rng=sim.rng.stream("meter.noise"))

    def _add_rail(self, name):
        rail = PowerRail(self.sim, name)
        self.rails[name] = rail
        return rail

    def component(self, name):
        """Look a component up by rail name."""
        mapping = {CPU: self.cpu, GPU: self.gpu, DSP: self.dsp,
                   WIFI: self.nic, DISPLAY: self.display, GPS: self.gps,
                   LTE: self.lte}
        device = mapping.get(name)
        if device is None:
            raise KeyError("platform has no component {!r}".format(name))
        return device

    def idle_power(self, name):
        """The component's deep-idle rail power (what a psbox is fed while
        the hardware belongs to other apps)."""
        if name == CPU:
            return self.cpu.power_model.idle_w
        if name in (GPU, DSP):
            device = self.component(name)
            return device.power_model.idle_w + device.freq_domain.opps[0].static_w
        if name == WIFI:
            return self.nic.power_model.psm_w
        if name == DISPLAY:
            return self.display.base_w
        if name == GPS:
            return self.gps.off_w
        if name == LTE:
            return self.lte.power_model.psm_w
        raise KeyError(name)

    @classmethod
    def am57(cls, seed=0, n_cpu_cores=2):
        """The paper's CPU+GPU+DSP board."""
        return cls(Simulator(seed), components=(CPU, GPU, DSP),
                   n_cpu_cores=n_cpu_cores)

    @classmethod
    def bbb(cls, seed=0):
        """The paper's WiFi board (single-core CPU + WiLink8)."""
        return cls(Simulator(seed), components=(CPU, WIFI), n_cpu_cores=1)

    @classmethod
    def full(cls, seed=0, n_cpu_cores=2):
        """All four components of the paper's prototypes on one board."""
        return cls(Simulator(seed), components=COMPONENTS,
                   n_cpu_cores=n_cpu_cores)

    @classmethod
    def extended(cls, seed=0, n_cpu_cores=2):
        """The full board plus the §7 extension hardware
        (OLED display, GPS, LTE modem)."""
        return cls(Simulator(seed), components=EXTENDED_COMPONENTS,
                   n_cpu_cores=n_cpu_cores)
