"""OLED display model (§7 "Support psbox on extra hardware", item 1).

The paper observes that OLED panels are *free of power entanglement*: each
pixel contributes independently with no lingering state, so the OS can
divide display power among apps exactly, by the pixels each one produces —
no sandbox machinery needed.  We model that: apps own surfaces (a fraction
of the panel at some intensity); the rail power is a base term plus the
per-surface pixel power, and per-app power traces are exact by
construction.
"""

from repro.sim.trace import StepTrace


class OledDisplay:
    """A panel whose power decomposes exactly per app surface."""

    def __init__(self, sim, rail, name="display", base_w=0.05,
                 full_panel_w=1.20):
        self.sim = sim
        self.rail = rail
        self.name = name
        self.base_w = base_w
        self.full_panel_w = full_panel_w
        self._surfaces = {}            # app_id -> (fraction, intensity)
        self.app_traces = {}           # app_id -> StepTrace of watts
        rail.set_part(name + ".base", base_w)

    def surface_power(self, fraction, intensity):
        """Watts drawn by a surface covering ``fraction`` of the panel at
        mean ``intensity`` (both in [0, 1])."""
        return self.full_panel_w * fraction * intensity

    def set_surface(self, app_id, fraction, intensity):
        """Replace the app's surface; fraction/intensity in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("pixel fraction must be within [0, 1]")
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be within [0, 1]")
        total = sum(
            frac for aid, (frac, _i) in self._surfaces.items()
            if aid != app_id
        ) + fraction
        if total > 1.0 + 1e-9:
            raise ValueError("surfaces exceed the panel")
        self._surfaces[app_id] = (fraction, intensity)
        watts = self.surface_power(fraction, intensity)
        self._trace_for(app_id).set(self.sim.now, watts)
        self.rail.set_part("{}.app{}".format(self.name, app_id), watts)

    def clear_surface(self, app_id):
        self._surfaces.pop(app_id, None)
        self._trace_for(app_id).set(self.sim.now, 0.0)
        self.rail.set_part("{}.app{}".format(self.name, app_id), 0.0)

    def _trace_for(self, app_id):
        if app_id not in self.app_traces:
            self.app_traces[app_id] = StepTrace(
                0.0, name="{}.app{}".format(self.name, app_id)
            )
        return self.app_traces[app_id]

    def app_energy(self, app_id, t0, t1):
        """Exact per-app display energy in joules — no heuristics needed."""
        trace = self.app_traces.get(app_id)
        if trace is None:
            return 0.0
        return trace.integrate(t0, t1) / 1e9
