"""DVFS frequency domains with snapshot/restore for power-state virtualization."""

from repro.sim.trace import StepTrace


class FreqDomain:
    """A shared clock/voltage domain over a set of operating points.

    ``set_opp`` switches operating points (cheap "operating/idle" state
    transitions, in the paper's taxonomy).  The psbox power-state
    virtualization layer snapshots and restores this state per sandbox via
    :meth:`snapshot` / :meth:`restore`.
    """

    def __init__(self, sim, name, opps, initial_index=0):
        if not opps:
            raise ValueError("frequency domain needs at least one OPP")
        self.sim = sim
        self.name = name
        self.opps = tuple(sorted(opps, key=lambda p: p.freq_hz))
        self.index = initial_index
        self.freq_trace = StepTrace(self.opps[initial_index].freq_hz, name=name)
        self.changed = sim.signal(name + ".freq_changed")

    @property
    def opp(self):
        return self.opps[self.index]

    @property
    def freq_hz(self):
        return self.opp.freq_hz

    @property
    def max_index(self):
        return len(self.opps) - 1

    def set_opp(self, index):
        """Switch to OPP ``index``; notifies listeners when it changes."""
        index = max(0, min(index, self.max_index))
        if index == self.index:
            return
        self.index = index
        self.freq_trace.set(self.sim.now, self.freq_hz)
        self.changed.fire(self.opp)

    def step(self, delta):
        """Move ``delta`` OPP steps up (positive) or down (negative)."""
        self.set_opp(self.index + delta)

    def cycles_between(self, t0, t1):
        """Exact cycles executed over [t0, t1) at the domain's frequency."""
        return self.freq_trace.integrate(t0, t1) / 1e9

    def snapshot(self):
        """Capture the virtualizable operating state."""
        return {"index": self.index}

    def default_state(self):
        """Pristine operating state for a brand-new context."""
        return {"index": 0}

    def restore(self, state):
        """Restore a previously captured operating state."""
        self.set_opp(state["index"])
