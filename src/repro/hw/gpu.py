"""GPU model (PowerVR SGX544MP-shaped)."""

from repro.hw.accel import CommandEngine
from repro.hw.dvfs import FreqDomain
from repro.hw.power import AccelPowerModel, OperatingPoint
from repro.sim.clock import from_usec


def default_gpu_opps():
    return (
        OperatingPoint(200e6, core_active_w=0.0, uncore_w=0.0, static_w=0.02),
        OperatingPoint(400e6, core_active_w=0.0, uncore_w=0.0, static_w=0.05),
        OperatingPoint(532e6, core_active_w=0.0, uncore_w=0.0, static_w=0.08),
    )


class Gpu(CommandEngine):
    """A mobile GPU: 2-deep command pipelining, DVFS, interrupt latency."""

    def __init__(self, sim, rail, power_model=None, opps=None, name="gpu"):
        opps = opps or default_gpu_opps()
        freq_domain = FreqDomain(sim, name, opps, initial_index=0)
        power_model = power_model or AccelPowerModel(
            opps=tuple(opps), idle_w=0.02
        )
        super().__init__(
            sim,
            rail,
            freq_domain,
            power_model,
            name=name,
            parallelism=2,
            parallel_efficiency=(1.0, 1.55),
            completion_delay=from_usec(400),
        )
