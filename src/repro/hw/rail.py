"""Power rails: named, measurable sums of component power contributions."""

from repro.sim.trace import StepTrace


class PowerRail:
    """One measurable power rail (the paper meters four of them in situ).

    Components publish named contributions in watts; the rail trace is their
    sum as a step function of time.  The meter and the accounting baselines
    only ever see the *total* — exactly the hardware design choice the paper
    identifies as a root of entanglement ("power can only be metered as a
    whole").
    """

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.trace = StepTrace(0.0, name=name)
        self._parts = {}

    def set_part(self, source, watts):
        """Set the contribution of ``source`` (a string) from now onward."""
        if watts < 0:
            raise ValueError(
                "rail {!r}: negative power {} from {!r}".format(
                    self.name, watts, source
                )
            )
        if watts == 0.0:
            self._parts.pop(source, None)
        else:
            self._parts[source] = float(watts)
        self.trace.set(self.sim.now, sum(self._parts.values()))

    def power_now(self):
        """Instantaneous rail power in watts."""
        return self.trace.last_value

    def part(self, source):
        """Current contribution of one source (0.0 when absent)."""
        return self._parts.get(source, 0.0)

    def energy(self, t0, t1):
        """Exact energy over [t0, t1) in joules."""
        return self.trace.integrate(t0, t1) / 1e9

    def mean_power(self, t0, t1):
        """Time-weighted mean power over [t0, t1) in watts."""
        return self.trace.mean(t0, t1)
