"""WiFi NIC model (TI WiLink8-shaped).

The NIC owns a small transmit FIFO and sends serially.  Three behaviours
matter for the reproduction:

* **Tail energy / power-save state machine** — after the last transmission
  the chip lingers in an active (CAM) state until a tail timeout, then drops
  to PSM.  This is lingering power state that psbox must virtualize.
* **Completion notification batching** — the firmware reports completions in
  batches (or after a flush timeout).  The paper attributes its long WiFi
  draining latencies (§6.2, hundreds of ms) to exactly this, so we model it.
* **Transmit power levels** — an operating state the driver controls and
  psbox virtualizes per sandbox.
"""

import itertools

from repro.sim.clock import SEC, from_msec, from_usec
from repro.sim.trace import EventTrace, StepTrace

PSM = "psm"
CAM = "cam"
TX = "tx"
RX = "rx"


class Packet:
    """One transmit unit (an aggregated MPDU burst in practice)."""

    _seq = itertools.count()

    __slots__ = ("app_id", "size_bytes", "seq", "submit_t", "tx_start_t",
                 "tx_end_t", "on_complete")

    def __init__(self, app_id, size_bytes, on_complete=None):
        if size_bytes <= 0:
            raise ValueError("packet must have positive size")
        self.app_id = app_id
        self.size_bytes = int(size_bytes)
        self.seq = next(Packet._seq)
        self.submit_t = None
        self.tx_start_t = None
        self.tx_end_t = None
        self.on_complete = on_complete

    def __repr__(self):
        return "Packet(app={}, {}B, seq={})".format(
            self.app_id, self.size_bytes, self.seq
        )


class WifiNic:
    """Serial transmitter with FIFO, tail-state machine, batched completions."""

    def __init__(
        self,
        sim,
        rail,
        power_model,
        name="wifi",
        rate_bps=40e6,
        per_packet_overhead=from_usec(400),
        fifo_depth=8,
        tail_timeout=from_msec(60),
        completion_batch=3,
        completion_flush=from_msec(15),
    ):
        self.sim = sim
        self.rail = rail
        self.power_model = power_model
        self.name = name
        self.rate_bps = rate_bps
        self.per_packet_overhead = per_packet_overhead
        self.fifo_depth = fifo_depth
        self.tail_timeout = tail_timeout
        self.completion_batch = completion_batch
        self.completion_flush = completion_flush

        self.tx_level = 0
        self.state = PSM
        self._fifo = []
        self._transmitting = None
        self._receiving = None
        self._rx_queue = []
        self._rx_event = None
        self._tx_event = None
        self._tail_event = None
        self._tail_deadline = None
        self._pending_completions = []
        self._flush_event = None

        self.space = sim.signal(name + ".space")
        self.log = EventTrace(name + ".packets")
        self.state_trace = StepTrace(0.0, name=name + ".state")
        self.usage_traces = {}
        self._update_power()

    # -- driver-facing interface ---------------------------------------------

    @property
    def queued_count(self):
        """Packets in the FIFO plus the one on the air."""
        return len(self._fifo) + (1 if self._transmitting is not None else 0)

    @property
    def has_room(self):
        return self.queued_count < self.fifo_depth

    @property
    def is_drained(self):
        """True when nothing is queued, on the air, or awaiting notification."""
        return self.queued_count == 0 and not self._pending_completions

    def queued_apps(self):
        """App ids of all queued/in-flight packets (with duplicates)."""
        apps = [pkt.app_id for pkt in self._fifo]
        if self._transmitting is not None:
            apps.append(self._transmitting.app_id)
        return apps

    def inflight_apps(self):
        """App ids with a transmission queued, on the air, or awaiting a
        completion notification (the set draining must empty)."""
        return self.queued_apps() + [
            pkt.app_id for pkt in self._pending_completions
        ]

    def enqueue(self, packet):
        """Accept a packet into the FIFO; returns False when full."""
        if not self.has_room:
            return False
        if packet.submit_t is None:
            packet.submit_t = self.sim.now
        self._fifo.append(packet)
        self._usage_trace(packet.app_id).add(self.sim.now, 1.0)
        self._maybe_start_tx()
        return True

    # -- reception ----------------------------------------------------------------
    #
    # The paper's §4.2 limitation, reproduced: commodity NICs cannot defer
    # receiving packets not destined to the current temporal balloon, so
    # reception happens whenever the air brings it — including inside other
    # apps' psbox windows, where its power pollutes their observations.

    def receive(self, app_id, size_bytes, on_complete=None):
        """A packet arrives over the air for ``app_id``.

        Reception cannot be scheduled by the OS: it proceeds as soon as the
        half-duplex radio is free, regardless of any active balloon.
        """
        packet = Packet(app_id, size_bytes, on_complete=on_complete)
        packet.submit_t = self.sim.now
        self._rx_queue.append(packet)
        self._maybe_start_rx()
        return packet

    @property
    def rx_busy(self):
        return self._receiving is not None

    def _maybe_start_rx(self):
        if self._receiving is not None or not self._rx_queue:
            return
        if self._transmitting is not None:
            return   # half-duplex: wait for the transmitter
        packet = self._rx_queue.pop(0)
        self._receiving = packet
        self._cancel_tail()
        packet.tx_start_t = self.sim.now
        self._enter_state(RX)
        self.log.log(self.sim.now, "rx_start", app=packet.app_id,
                     seq=packet.seq, size=packet.size_bytes)
        airtime = self.per_packet_overhead + int(
            packet.size_bytes * 8 / self.rate_bps * SEC
        )
        self._rx_event = self.sim.call_later(airtime, self._finish_rx)

    def _finish_rx(self):
        packet = self._receiving
        self._receiving = None
        self._rx_event = None
        now = self.sim.now
        packet.tx_end_t = now
        self.log.log(now, "rx_end", app=packet.app_id, seq=packet.seq,
                     size=packet.size_bytes)
        if packet.on_complete is not None:
            packet.on_complete(packet)
        if self._rx_queue:
            self._maybe_start_rx()
        elif self._fifo:
            self._maybe_start_tx()
        else:
            self._enter_state(CAM)
            self._arm_tail(self.tail_timeout)

    def set_tx_level(self, level):
        if not 0 <= level < len(self.power_model.tx_levels_w):
            raise ValueError("bad tx power level {}".format(level))
        self.tx_level = level
        self._update_power()

    # -- power-state virtualization -------------------------------------------

    def snapshot(self):
        """Capture the operating power state (for per-psbox virtualization)."""
        now = self.sim.now
        if self.state == CAM and self._tail_deadline is not None:
            tail_left = max(self._tail_deadline - now, 0)
        elif self.state == TX:
            tail_left = self.tail_timeout
        else:
            tail_left = 0
        return {"tx_level": self.tx_level, "tail_left": tail_left}

    def default_state(self):
        """Pristine operating state for a brand-new context."""
        return {"tx_level": 0, "tail_left": 0}

    def restore(self, state):
        """Restore an operating power state captured by :meth:`snapshot`.

        Only legal while the transmitter is idle (balloon switches happen
        after draining, so this holds by construction).
        """
        if self._transmitting is not None:
            raise RuntimeError("cannot restore NIC power state mid-transmission")
        self.tx_level = state["tx_level"]
        self._cancel_tail()
        if self._receiving is not None:
            # The radio is busy with a reception the OS could not defer;
            # the restored state takes effect when it ends (the receive
            # path parks the chip in CAM with a fresh tail).
            self._update_power()
            return
        if state["tail_left"] > 0:
            self._enter_state(CAM)
            self._arm_tail(state["tail_left"])
        else:
            self._enter_state(PSM)

    # -- internals --------------------------------------------------------------

    def _maybe_start_tx(self):
        if self._transmitting is not None or not self._fifo:
            return
        if self._receiving is not None:
            return   # half-duplex: the receiver owns the radio
        packet = self._fifo.pop(0)
        self._transmitting = packet
        self._cancel_tail()
        packet.tx_start_t = self.sim.now
        self._enter_state(TX)
        self.log.log(self.sim.now, "tx_start", app=packet.app_id, seq=packet.seq,
                     size=packet.size_bytes)
        airtime = self.per_packet_overhead + int(
            packet.size_bytes * 8 / self.rate_bps * SEC
        )
        self._tx_event = self.sim.call_later(airtime, self._finish_tx)

    def _finish_tx(self):
        packet = self._transmitting
        self._transmitting = None
        self._tx_event = None
        now = self.sim.now
        packet.tx_end_t = now
        self.log.log(now, "tx_end", app=packet.app_id, seq=packet.seq,
                     size=packet.size_bytes)
        self._usage_trace(packet.app_id).add(now, -1.0)
        self._queue_completion(packet)
        if self._rx_queue:
            self._maybe_start_rx()
        elif self._fifo:
            self._maybe_start_tx()
        else:
            self._enter_state(CAM)
            self._arm_tail(self.tail_timeout)
        self.space.fire(self)

    def _queue_completion(self, packet):
        self._pending_completions.append(packet)
        if len(self._pending_completions) >= self.completion_batch:
            self._flush_completions()
        elif self._flush_event is None:
            self._flush_event = self.sim.call_later(
                self.completion_flush, self._flush_completions
            )

    def _flush_completions(self):
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        batch, self._pending_completions = self._pending_completions, []
        for packet in batch:
            if packet.on_complete is not None:
                packet.on_complete(packet)

    def _arm_tail(self, timeout):
        self._cancel_tail()
        self._tail_deadline = self.sim.now + timeout
        self._tail_event = self.sim.call_later(timeout, self._tail_expire)

    def _cancel_tail(self):
        if self._tail_event is not None:
            self._tail_event.cancel()
            self._tail_event = None
        self._tail_deadline = None

    def _tail_expire(self):
        self._tail_event = None
        self._tail_deadline = None
        if self._transmitting is None:
            self._enter_state(PSM)

    def _enter_state(self, state):
        self.state = state
        codes = {PSM: 0.0, CAM: 1.0, TX: 2.0, RX: 3.0}
        self.state_trace.set(self.sim.now, codes[state])
        self._update_power()

    def _update_power(self):
        if self.state == TX:
            watts = self.power_model.tx_w(self.tx_level)
        elif self.state == RX:
            watts = self.power_model.rx_w
        elif self.state == CAM:
            watts = self.power_model.cam_w
        else:
            watts = self.power_model.psm_w
        self.rail.set_part(self.name, watts)

    def _usage_trace(self, app_id):
        if app_id not in self.usage_traces:
            self.usage_traces[app_id] = StepTrace(
                0.0, name="{}.usage.{}".format(self.name, app_id)
            )
        return self.usage_traces[app_id]
