"""Hardware models: the simulated embedded platform.

This package stands in for the paper's two evaluation boards (AM57EVM and
BeagleBone Black + WiLink8) and their in-situ DAQ power meter.  Every
component contributes piecewise-constant power terms to a rail; the meter
resamples rails exactly the way a DAQ ADC would.

The three causes of power entanglement from the paper's Section 2.3 are
properties of these models, not of any accounting code:

* spatial concurrency — the CPU rail carries shared static + uncore power;
* blurry request boundaries — accelerators execute commands concurrently
  with sub-additive combined power;
* lingering power state — DVFS governors and the NIC tail timer leave state
  behind that changes the power of subsequent work.
"""

from repro.hw.accel import Command, CommandEngine
from repro.hw.cpu import CpuCluster, CpuCore
from repro.hw.display import OledDisplay
from repro.hw.dsp import Dsp
from repro.hw.dvfs import FreqDomain
from repro.hw.gps import Gps
from repro.hw.gpu import Gpu
from repro.hw.lte import LteNic
from repro.hw.meter import PowerMeter
from repro.hw.nic import Packet, WifiNic
from repro.hw.platform import Platform
from repro.hw.power import (
    AccelPowerModel,
    CpuPowerModel,
    NicPowerModel,
    OperatingPoint,
)
from repro.hw.rail import PowerRail

__all__ = [
    "AccelPowerModel",
    "Command",
    "CommandEngine",
    "CpuCluster",
    "CpuCore",
    "CpuPowerModel",
    "Dsp",
    "FreqDomain",
    "Gps",
    "Gpu",
    "LteNic",
    "NicPowerModel",
    "OledDisplay",
    "OperatingPoint",
    "Packet",
    "Platform",
    "PowerMeter",
    "PowerRail",
    "WifiNic",
]
