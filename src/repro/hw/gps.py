"""GPS model (§7 "Support psbox on extra hardware", item 2).

GPS has an expensive off/suspended state (cold start re-acquires
satellites) and an operating state whose power is *unaffected by
concurrent use*.  Per the paper's rule for off/suspended states (§4.1):

* the kernel never virtualizes the off state (cold-restarting per psbox
  would be prohibitive), and
* it must not reveal off/suspend-pertaining power — a malicious app could
  otherwise infer other apps' GPS usage — so a psbox is fed idle power for
  every period the device is not in its steady operating state.

Once operating, the hardware power may be revealed to every psbox as-is.
"""

from repro.sim.clock import from_msec
from repro.sim.trace import StepTrace

OFF = "off"
ACQUIRING = "acquiring"   # cold start: exiting the off state
TRACKING = "tracking"     # steady operating state


class Gps:
    """A shared GPS device with reference-counted use."""

    def __init__(self, sim, rail, name="gps", acquire_time=from_msec(400),
                 off_w=0.0, acquiring_w=0.45, tracking_w=0.15):
        self.sim = sim
        self.rail = rail
        self.name = name
        self.acquire_time = acquire_time
        self.off_w = off_w
        self.acquiring_w = acquiring_w
        self.tracking_w = tracking_w
        self.state = OFF
        self.users = set()
        self.state_trace = StepTrace(0.0, name=name + ".state")
        self._acquire_event = None
        self._set_state(OFF)

    @property
    def operating(self):
        return self.state == TRACKING

    def acquire(self, app_id):
        """An app starts using GPS; powers the device up if needed."""
        self.users.add(app_id)
        if self.state == OFF:
            self._set_state(ACQUIRING)
            self._acquire_event = self.sim.call_later(
                self.acquire_time, self._locked
            )

    def release(self, app_id):
        """An app stops using GPS; powers down when nobody is left."""
        self.users.discard(app_id)
        if not self.users:
            if self._acquire_event is not None:
                self._acquire_event.cancel()
                self._acquire_event = None
            self._set_state(OFF)

    def _locked(self):
        self._acquire_event = None
        if self.users:
            self._set_state(TRACKING)

    def _set_state(self, state):
        self.state = state
        codes = {OFF: 0.0, ACQUIRING: 1.0, TRACKING: 2.0}
        self.state_trace.set(self.sim.now, codes[state])
        watts = {OFF: self.off_w, ACQUIRING: self.acquiring_w,
                 TRACKING: self.tracking_w}[state]
        self.rail.set_part(self.name, watts)

    def operating_windows(self, t0, t1):
        """Periods within [t0, t1) in the steady operating state."""
        return [
            (s, e)
            for s, e, code in self.state_trace.segments(t0, t1)
            if code == 2.0
        ]
