"""Power model parameters for every component.

Defaults are calibrated to the magnitudes visible in the paper's figures
(CPU rail ~0.1-4 W, GPU/DSP/WiFi rails ~0.1-1.5 W).  Absolute numbers are
not the reproduction target — the entanglement structure is.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS operating point of a frequency domain."""

    freq_hz: float
    core_active_w: float
    uncore_w: float
    static_w: float

    def __post_init__(self):
        if self.freq_hz <= 0:
            raise ValueError("operating point frequency must be positive")


def _default_cpu_opps():
    # Loosely Cortex-A15-shaped: power grows super-linearly with frequency
    # because voltage scales with it.
    return (
        OperatingPoint(300e6, core_active_w=0.18, uncore_w=0.22, static_w=0.10),
        OperatingPoint(600e6, core_active_w=0.38, uncore_w=0.38, static_w=0.14),
        OperatingPoint(1000e6, core_active_w=0.72, uncore_w=0.60, static_w=0.20),
        OperatingPoint(1500e6, core_active_w=1.30, uncore_w=0.95, static_w=0.30),
    )


@dataclass(frozen=True)
class CpuPowerModel:
    """Cluster rail power: idle_w when fully idle, otherwise
    static + uncore + n_active * core_active at the current OPP.

    The shared static+uncore terms are what make ``P(2 cores) < 2 * P(1
    core)`` — the spatial-concurrency entanglement of Figure 3(a).
    """

    opps: tuple = field(default_factory=_default_cpu_opps)
    idle_w: float = 0.04

    def rail_power(self, opp, n_active):
        if n_active <= 0:
            return self.idle_w
        return opp.static_w + opp.uncore_w + n_active * opp.core_active_w


def _default_gpu_opps():
    return (
        OperatingPoint(200e6, core_active_w=0.0, uncore_w=0.0, static_w=0.05),
        OperatingPoint(400e6, core_active_w=0.0, uncore_w=0.0, static_w=0.09),
        OperatingPoint(532e6, core_active_w=0.0, uncore_w=0.0, static_w=0.13),
    )


def _default_dsp_opps():
    return (
        OperatingPoint(400e6, core_active_w=0.0, uncore_w=0.0, static_w=0.06),
        OperatingPoint(750e6, core_active_w=0.0, uncore_w=0.0, static_w=0.12),
    )


@dataclass(frozen=True)
class AccelPowerModel:
    """Accelerator rail power (GPU/DSP).

    ``P = idle + freq_power_factor * overlap_factor(k) * sum(command powers)``
    where ``overlap_factor(k) < 1`` for k > 1 concurrent commands: overlapped
    commands share functional units, so their combined power is sub-additive
    — the blurry-request-boundary entanglement of Figure 3(b).
    """

    opps: tuple = field(default_factory=_default_gpu_opps)
    idle_w: float = 0.05
    overlap_factors: tuple = (1.0, 0.85, 0.78, 0.72)
    freq_power_exponent: float = 1.6

    def overlap_factor(self, n_inflight):
        if n_inflight <= 0:
            return 0.0
        idx = min(n_inflight, len(self.overlap_factors)) - 1
        return self.overlap_factors[idx]

    def rail_power(self, opp, nominal_freq, command_powers):
        if not command_powers:
            return self.idle_w + opp.static_w
        freq_pf = (opp.freq_hz / nominal_freq) ** self.freq_power_exponent
        active = freq_pf * self.overlap_factor(len(command_powers)) * sum(
            command_powers
        )
        return self.idle_w + opp.static_w + active


@dataclass(frozen=True)
class NicPowerModel:
    """WiFi NIC rail power by state.

    ``psm_w`` — power-save mode (deep idle).
    ``cam_w`` — constantly-awake/active-idle (the "tail" state).
    ``tx_w``  — transmitting at power level index (list).

    The tail timer (ACTIVE -> PSM after inactivity) is lingering power state:
    a packet's energy impact outlives its transmission, Figure 3(c)'s WiFi
    analogue.
    """

    psm_w: float = 0.03
    cam_w: float = 0.28
    tx_levels_w: tuple = (0.70, 0.95, 1.25)
    rx_w: float = 0.80

    def tx_w(self, level):
        return self.tx_levels_w[level]
