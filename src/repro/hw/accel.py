"""Accelerator command engines (shared by the GPU and DSP models).

The engine executes commands *concurrently* up to a hardware parallelism
limit, the way real GPUs pipeline work from an asynchronous command queue.
Concurrent commands share functional units: each one slows down, and their
combined power is sub-additive.  Both effects make per-command power
attribution impossible from the outside — the paper's "blurry request
boundary" entanglement (Figure 3(b)).
"""

import itertools

from repro.sim.clock import SEC
from repro.sim.trace import EventTrace, StepTrace


class Command:
    """One accelerator command (GPU render/compute batch, DSP kernel...)."""

    _seq = itertools.count()

    __slots__ = (
        "app_id",
        "kind",
        "cycles",
        "power_w",
        "seq",
        "submit_t",
        "dispatch_t",
        "complete_t",
        "occupancy_ns",
        "billed_by_window",
        "on_complete",
    )

    def __init__(self, app_id, kind, cycles, power_w, on_complete=None):
        if cycles <= 0:
            raise ValueError("command must have positive cycles")
        if power_w < 0:
            raise ValueError("command power must be non-negative")
        self.app_id = app_id
        self.kind = kind
        self.cycles = float(cycles)
        self.power_w = float(power_w)
        self.seq = next(Command._seq)
        self.submit_t = None
        self.dispatch_t = None
        self.complete_t = None
        self.occupancy_ns = 0.0
        self.billed_by_window = False
        self.on_complete = on_complete

    def __repr__(self):
        return "Command(app={}, kind={!r}, seq={})".format(
            self.app_id, self.kind, self.seq
        )


class _Inflight:
    __slots__ = ("command", "done", "last_update", "occupancy")

    def __init__(self, command, now):
        self.command = command
        self.done = 0.0
        self.last_update = now
        self.occupancy = 0.0   # device-share integral in ns


class CommandEngine:
    """Executes commands concurrently with shared-unit slowdown and power.

    With ``k`` commands in flight, each progresses at
    ``freq_factor * parallel_efficiency(k) / k`` of nominal speed, and rail
    power follows :class:`repro.hw.power.AccelPowerModel`.
    """

    def __init__(
        self,
        sim,
        rail,
        freq_domain,
        power_model,
        name,
        parallelism=2,
        parallel_efficiency=(1.0, 1.55, 1.9, 2.1),
        completion_delay=0,
    ):
        self.sim = sim
        self.rail = rail
        self.freq_domain = freq_domain
        self.power_model = power_model
        self.name = name
        self.parallelism = parallelism
        self.parallel_efficiency = parallel_efficiency
        self.completion_delay = completion_delay
        self.nominal_freq = freq_domain.opps[-1].freq_hz
        self._inflight = []
        self._current_speed = 0.0   # cycles/s per command, as of last settle
        self._completion_event = None
        self.log = EventTrace(name + ".commands")
        self.busy_trace = StepTrace(0.0, name=name + ".busy")
        self.usage_traces = {}
        freq_domain.changed.subscribe(self._on_freq_change)
        self._update_power()

    # -- dispatch interface (used by the kernel driver) ---------------------

    @property
    def inflight_count(self):
        return len(self._inflight)

    @property
    def has_room(self):
        return len(self._inflight) < self.parallelism

    def inflight_apps(self):
        """App ids of all in-flight commands (with duplicates)."""
        return [entry.command.app_id for entry in self._inflight]

    def dispatch(self, command):
        """Begin executing ``command``; completion is reported via callback."""
        if not self.has_room:
            raise RuntimeError("{}: no execution slot free".format(self.name))
        now = self.sim.now
        command.dispatch_t = now
        self._settle(now)
        self._inflight.append(_Inflight(command, now))
        self._current_speed = self._speed()
        self.log.log(now, "dispatch", app=command.app_id,
                     cmd_kind=command.kind, seq=command.seq,
                     power=command.power_w)
        self._usage_trace(command.app_id).add(now, 1.0)
        self._reschedule()
        self._update_power()

    # -- execution dynamics -------------------------------------------------

    def _speed(self):
        """Per-command progress rate in cycles/second."""
        k = len(self._inflight)
        if k == 0:
            return 0.0
        idx = min(k, len(self.parallel_efficiency)) - 1
        efficiency = self.parallel_efficiency[idx]
        return self.freq_domain.freq_hz * efficiency / k

    def _settle(self, now):
        """Advance progress for the elapsed interval.

        Uses the speed that was in force *during* the interval (cached at
        the previous settle), not the current one — a frequency change must
        not retroactively re-price past execution.
        """
        speed = self._current_speed
        k = len(self._inflight)
        for entry in self._inflight:
            dt = now - entry.last_update
            entry.done += speed * dt / SEC
            entry.occupancy += dt / k
            entry.last_update = now
        self._current_speed = self._speed()

    def _reschedule(self):
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._inflight:
            return
        speed = self._speed()
        soonest = min(
            max(entry.command.cycles - entry.done, 0.0) for entry in self._inflight
        )
        delay = max(int(soonest / speed * SEC), 1) if speed > 0 else 1
        self._completion_event = self.sim.call_later(delay, self._check_completions)

    def _check_completions(self):
        now = self.sim.now
        self._settle(now)
        finished = [
            entry
            for entry in self._inflight
            if entry.command.cycles - entry.done <= 1e-6
        ]
        for entry in finished:
            self._inflight.remove(entry)
            command = entry.command
            command.complete_t = now
            command.occupancy_ns = entry.occupancy
            self.log.log(now, "complete", app=command.app_id,
                         cmd_kind=command.kind, seq=command.seq)
            self._usage_trace(command.app_id).add(now, -1.0)
            if command.on_complete is not None:
                # Interrupt/notification latency before the driver hears
                # about the completion.
                if self.completion_delay > 0:
                    self.sim.call_later(self.completion_delay,
                                        command.on_complete, command)
                else:
                    self.sim.call_soon(command.on_complete, command)
        self._current_speed = self._speed()
        self._reschedule()
        self._update_power()

    def _on_freq_change(self, _opp):
        self._settle(self.sim.now)
        self._reschedule()
        self._update_power()

    def _update_power(self):
        powers = [entry.command.power_w for entry in self._inflight]
        watts = self.power_model.rail_power(
            self.freq_domain.opp, self.nominal_freq, powers
        )
        self.rail.set_part(self.name, watts)
        self.busy_trace.set(self.sim.now, 1.0 if self._inflight else 0.0)

    def utilization(self, t0, t1):
        """Fraction of [t0, t1) with at least one command in flight."""
        if t1 <= t0:
            return 0.0
        return self.busy_trace.integrate(t0, t1) / (t1 - t0)

    def _usage_trace(self, app_id):
        if app_id not in self.usage_traces:
            self.usage_traces[app_id] = StepTrace(
                0.0, name="{}.usage.{}".format(self.name, app_id)
            )
        return self.usage_traces[app_id]
