"""Cellular (LTE) NIC model (§7 "Support psbox on extra hardware", item 3).

The paper's negative result: temporal balloons work for cellular like they
do for WiFi, but the RRC power-state machine is driven by the *cellular
standard agreed with the tower*, not by the OS — promotions take ~100 ms,
the connected tail lasts seconds, and none of it can be saved/restored per
psbox.  Power-state virtualization is therefore impossible without future
hardware support, and psbox insulation on LTE is measurably weaker.

We model exactly that: a WiFi-like transmitter with an RRC promotion delay
before the first transmission out of idle, a long connected tail, and
``snapshot``/``restore`` that refuse to run.
"""

from repro.hw.nic import CAM, PSM, WifiNic
from repro.hw.power import NicPowerModel
from repro.sim.clock import from_msec, from_usec


def default_lte_power_model():
    """RRC-idle / connected-idle / transmitting power levels."""
    return NicPowerModel(psm_w=0.02, cam_w=0.85,
                         tx_levels_w=(1.10, 1.35, 1.60))


class LteNic(WifiNic):
    """An LTE modem: WiFi transmit machinery + uncontrollable RRC states."""

    def __init__(self, sim, rail, power_model=None, name="lte",
                 promotion_delay=from_msec(110), **kwargs):
        kwargs.setdefault("rate_bps", 25e6)
        kwargs.setdefault("per_packet_overhead", from_usec(700))
        kwargs.setdefault("tail_timeout", from_msec(900))
        kwargs.setdefault("completion_batch", 3)
        kwargs.setdefault("completion_flush", from_msec(20))
        super().__init__(sim, rail, power_model or default_lte_power_model(),
                         name=name, **kwargs)
        self.promotion_delay = promotion_delay
        self._promoting = False

    # -- RRC promotion ----------------------------------------------------------

    def _maybe_start_tx(self):
        if self._transmitting is not None or not self._fifo:
            return
        if self._promoting:
            return
        if self.state == PSM:
            # RRC idle -> connected: the tower grants the connection after
            # the promotion procedure; the radio burns connected-idle power
            # meanwhile.
            self._promoting = True
            self._cancel_tail()
            self._enter_state(CAM)
            self.log.log(self.sim.now, "rrc_promotion")
            self.sim.call_later(self.promotion_delay, self._promoted)
            return
        super()._maybe_start_tx()

    def _promoted(self):
        self._promoting = False
        self._maybe_start_tx()
        if self._transmitting is None and not self._fifo:
            # Nothing left to send: ride the connected tail.
            self._arm_tail(self.tail_timeout)

    # -- the negative result: no power-state virtualization ---------------------

    def snapshot(self):
        raise RuntimeError(
            "LTE RRC state transitions are controlled by the cellular "
            "standard, not the OS; per-psbox virtualization needs future "
            "hardware support (paper §7)"
        )

    def restore(self, state):
        raise RuntimeError("LTE power state cannot be restored by the OS")

    def default_state(self):
        raise RuntimeError("LTE power state cannot be programmed by the OS")
