"""In-situ power meter: the simulated DAQ.

The paper's prototypes sample four power rails at 100 kHz with a DAQ whose
clock is synchronized to the CPU.  Here rails are exact step functions, so
the meter simply resamples them on a uniform timestamped grid — which is
precisely what an (ideal, noise-free) ADC would capture.  Optional Gaussian
noise is available for robustness experiments.
"""

import numpy as np

from repro.sim.clock import USEC


class PowerMeter:
    """Samples power rails on a uniform grid; timestamps are sim-clock times."""

    def __init__(self, sim, rails, sample_interval=10 * USEC, noise_w=0.0,
                 rng=None):
        self.sim = sim
        self.rails = dict(rails)
        self.sample_interval = sample_interval
        self.noise_w = noise_w
        self._rng = rng

    def rail(self, name):
        if name not in self.rails:
            raise KeyError(
                "no rail {!r}; rails: {}".format(name, sorted(self.rails))
            )
        return self.rails[name]

    def sample(self, rail_name, t0, t1, dt=None):
        """Return ``(times, watts)`` arrays over [t0, t1).

        An installed fault plan may perturb the returned samples (noise,
        dropout) at the ``meter.sample`` site — samples only; ``energy``
        stays the exact integral, as a real DAQ glitch would not change the
        physical joules drawn.
        """
        if dt is None:
            dt = self.sample_interval
        if dt <= 0:
            raise ValueError(
                "sample interval must be positive, got dt={!r}".format(dt)
            )
        times, watts = self.rail(rail_name).trace.resample(t0, t1, dt)
        if self.noise_w > 0 and self._rng is not None:
            watts = watts + self._rng.normal(0.0, self.noise_w, size=len(watts))
            watts = np.maximum(watts, 0.0)
        plan = self.sim.faults
        if plan is not None:
            watts = plan.sample_noise("meter.sample", watts)
            watts = plan.sample_dropout("meter.sample", watts)
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.inc("meter.samples", len(times))
            obs.metrics.inc("meter.reads")
        return times, watts

    def energy(self, rail_name, t0, t1):
        """Exact energy over [t0, t1) in joules (integral, not sample sum)."""
        return self.rail(rail_name).energy(t0, t1)

    def mean_power(self, rail_name, t0, t1):
        return self.rail(rail_name).mean_power(t0, t1)
