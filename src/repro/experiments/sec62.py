"""Section 6.2: performance impact — latency increases and throughput loss.

Latency: extra submit-to-dispatch wait with psbox active vs without (GPU,
DSP, WiFi) plus the CPU task-shootdown time (IPI round).  Throughput: total
hardware throughput loss from one instance using psbox (reusing Fig 8).
"""

from dataclasses import dataclass

from repro.analysis.metrics import latency_summary
from repro.apps.dsp_apps import dgemm, sgemm
from repro.apps.gpu_apps import cube, magic
from repro.apps.wifi_apps import scp, wget
from repro.experiments.common import boot
from repro.experiments.fig8 import FIG8_SCENARIOS, run_fig8
from repro.sim.clock import SEC


@dataclass
class LatencyRow:
    component: str
    mean_without_ns: float
    mean_with_ns: float

    @property
    def increase_ns(self):
        return self.mean_with_ns - self.mean_without_ns


def _dispatch_latencies(component, use_psbox, seed, duration):
    platform, kernel = boot(seed=seed)
    if component == "gpu":
        a, b = cube(kernel, frames=10_000), magic(kernel, frames=10_000)
        sched = kernel.gpu_sched
    elif component == "dsp":
        a, b = dgemm(kernel, iterations=10_000), sgemm(kernel,
                                                       iterations=10_000)
        sched = kernel.dsp_sched
    elif component == "wifi":
        a = wget(kernel, total_bytes=10**9)
        b = scp(kernel, total_bytes=10**9)
        sched = kernel.net_sched
    else:
        raise KeyError(component)
    if use_psbox:
        box = a.create_psbox((component,))
        box.enter()
    platform.sim.run(until=duration)
    waits = sched.dispatch_waits()
    return latency_summary(waits)


def run_sec62_latency(seed=9, duration=3 * SEC):
    """Per-device dispatch latency without/with one psbox user."""
    rows = []
    for component in ("gpu", "dsp", "wifi"):
        without = _dispatch_latencies(component, False, seed, duration)
        with_box = _dispatch_latencies(component, True, seed, duration)
        rows.append(LatencyRow(component, without["mean"], with_box["mean"]))
    # CPU: the shootdown cost is one IPI round; report the configured IPI
    # delay, which is what every remote core pays at each balloon edge.
    _platform, kernel = boot(seed=seed)
    rows.append(LatencyRow("cpu (shootdown)", 0.0,
                           float(kernel.config.ipi_delay)))
    return rows


@dataclass
class ThroughputLossRow:
    component: str
    total_loss_pct: float
    sandboxed_loss_pct: float
    max_other_loss_pct: float


def run_sec62_throughput(seed=5):
    """Total hardware throughput loss per component (one psbox user)."""
    rows = []
    for component in FIG8_SCENARIOS:
        result = run_fig8(component, seed=seed)
        rows.append(ThroughputLossRow(
            component=component,
            total_loss_pct=result.total_loss_pct,
            sandboxed_loss_pct=result.sandboxed.loss_pct,
            max_other_loss_pct=max(
                (o.loss_pct for o in result.others), default=0.0),
        ))
    return rows
