"""Section 2.5: the GPU power side channel, with and without psbox."""

from dataclasses import dataclass

from repro.sidechannel.attack import WebsiteFingerprinter


@dataclass
class SidechannelResult:
    without_psbox: object      # AttackResult
    with_psbox: object         # AttackResult

    @property
    def mitigation_factor(self):
        if self.with_psbox.success_rate == 0:
            return float("inf")
        return self.without_psbox.success_rate / self.with_psbox.success_rate


def run_sidechannel(sites=None, trials_per_site=3, seed=1000):
    """Run the fingerprinting campaign in both worlds."""
    fingerprinter = WebsiteFingerprinter(sites=sites).train()
    without = fingerprinter.run(trials_per_site=trials_per_site,
                                use_psbox=False, seed=seed)
    with_box = fingerprinter.run(trials_per_site=trials_per_site,
                                 use_psbox=True, seed=seed)
    return SidechannelResult(without_psbox=without, with_psbox=with_box)
