"""Parallel sweep over the paper's figure/section experiments.

``python -m repro.experiments sweep --jobs N`` runs every figure and
section experiment — plus a powercap cap-fraction sweep — as independent
cells on the :mod:`repro.par` process pool.  Each cell captures the stdout
its experiment would have printed; the merge re-emits the captured text in
work-list order, so ``--jobs 8`` output is byte-identical to ``--jobs 1``
(which runs the same cells in-process).

Cells are addressed by name: the plain experiment subcommands (``fig3`` ..
``sidechannel``) and ``powercap@<fraction>`` for the cap sweep.  With
``--cache DIR`` a finished sweep replays from the result cache instantly.
"""

import contextlib
import io
import threading

from repro.par import ParallelRunner, ResultCache, effective_jobs, work_list

#: ``redirect_stdout`` swaps the *process-global* ``sys.stdout``, so two
#: sweep cells capturing concurrently on the thread backend would steal
#: each other's text; one-capture-at-a-time keeps every backend
#: byte-identical (process backends each own their stdout and never wait)
_CAPTURE_LOCK = threading.Lock()

#: the dotted entry point spawn-started workers import
CELL_RUNNER = "repro.experiments.sweep:run_sweep_cell"

#: powercap cap fractions swept (70% is the paper-extension default)
CAP_FRACTIONS = (0.60, 0.70, 0.80)

#: cells in print order; the figure experiments first, then the cap sweep
FIG_CELLS = ("fig3", "fig6", "fig7", "fig8", "fig9",
             "sec62", "sec63", "sidechannel")


def cell_names():
    return list(FIG_CELLS) + [
        "powercap@{:.2f}".format(fraction) for fraction in CAP_FRACTIONS
    ]


def _powercap_cell(fraction):
    from repro.experiments.powercap_exp import run_powercap

    result = run_powercap(cap_fraction=fraction)
    print("cap {:>3.0%} of peak: uncapped {:.2f} W  cap {:.2f} W  "
          "steady {:.2f} W  compliance {:+.1f}%  throttle/relax {}".format(
              fraction, result.uncapped_w, result.cap_w, result.steady_w,
              result.compliance_pct, result.throttle_actions))


def run_sweep_cell(seed, config):
    """Spawn-safe cell runner: one experiment, stdout captured as text."""
    del seed    # sweep cells carry their seeds internally
    name = config["cell"]
    buffer = io.StringIO()
    with _CAPTURE_LOCK, contextlib.redirect_stdout(buffer):
        if name.startswith("powercap@"):
            _powercap_cell(float(name.split("@", 1)[1]))
        else:
            from repro.experiments.__main__ import EXPERIMENTS

            EXPERIMENTS[name]()
    return {"cell": name, "text": buffer.getvalue()}


def sweep_items(names=None):
    """The sweep's work-list; unknown cell names are a ValueError here,
    before anything reaches a worker (where a typo — or ``"sweep"`` itself,
    which would recurse — would surface as an opaque CellError)."""
    names = cell_names() if names is None else list(names)
    unknown = sorted(set(names) - set(cell_names()))
    if unknown:
        raise ValueError("unknown sweep cells: {} (available: {})".format(
            ", ".join(unknown), ", ".join(cell_names())))
    return work_list("sweep", CELL_RUNNER,
                     [(0, {"cell": name}) for name in names])


def run_sweep(names=None, jobs=1, cache=None, obs_metrics=False,
              backend="auto"):
    """Run the sweep; returns ``(payloads-in-order, runner)``."""
    runner = ParallelRunner(jobs=jobs, cache=cache, obs_metrics=obs_metrics,
                            backend=backend)
    payloads = runner.run(sweep_items(names))
    return payloads, runner


def main(argv=None):
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep",
        description="Run the figure experiments as a parallel sweep.",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--cache", metavar="DIR", default=None)
    parser.add_argument("--backend",
                        choices=["auto", "inline", "thread", "spawn",
                                 "socket"],
                        default="auto")
    parser.add_argument("--only", metavar="CELLS", default=None,
                        help="comma-separated cell names (default: all)")
    args = parser.parse_args(argv)
    try:
        args.jobs = effective_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))

    names = args.only.split(",") if args.only else None
    cache = ResultCache(args.cache) if args.cache else None
    try:
        payloads, runner = run_sweep(names, jobs=args.jobs, cache=cache,
                                     backend=args.backend)
    except ValueError as exc:
        parser.error(str(exc))
    for payload in payloads:
        print("== {} ==".format(payload["cell"]))
        print(payload["text"], end="")
    if args.jobs > 1 or cache is not None:
        print(runner.stats.summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
