"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver returns a plain result object carrying the same rows/series the
paper reports; the benchmark harness prints and sanity-checks them.  See
DESIGN.md's per-experiment index for the mapping.
"""

from repro.experiments.fig3 import (
    run_fig3a_spatial,
    run_fig3b_requests,
    run_fig3c_lingering,
)
from repro.experiments.fig6 import FIG6_SCENARIOS, run_fig6_row
from repro.experiments.fig7 import (
    run_fig7_cpu,
    run_fig7_dsp,
    run_fig7_gpu,
    run_fig7_wifi,
)
from repro.experiments.fig8 import FIG8_SCENARIOS, run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.sec62 import run_sec62_latency, run_sec62_throughput
from repro.experiments.sec63 import run_sec63_robustness
from repro.experiments.sidechannel_exp import run_sidechannel

__all__ = [
    "FIG6_SCENARIOS",
    "FIG8_SCENARIOS",
    "run_fig3a_spatial",
    "run_fig3b_requests",
    "run_fig3c_lingering",
    "run_fig6_row",
    "run_fig7_cpu",
    "run_fig7_dsp",
    "run_fig7_gpu",
    "run_fig7_wifi",
    "run_fig8",
    "run_fig9",
    "run_sec62_latency",
    "run_sec62_throughput",
    "run_sec63_robustness",
    "run_sidechannel",
]
