"""Figure 6: elimination of power entanglement.

For every hardware component, the designated app runs alone and co-runs
with other apps; its energy is observed through psbox and attributed by the
existing per-sample accounting approach.  psbox observations stay
consistent across co-runners; the existing approach's shares drift by tens
of percent.
"""

from dataclasses import dataclass

from repro.accounting import PerSampleUsageAccounting
from repro.analysis.energy import percent_delta
from repro.apps.cpu_apps import bodytrack, calib3d, dedup
from repro.apps.dsp_apps import dgemm, monte, sgemm
from repro.apps.gpu_apps import gpu_browser, magic, triangle
from repro.apps.wifi_apps import scp, wget, wifi_browser
from repro.experiments.common import boot, run_until_finished
from repro.sim.clock import MSEC

#: component -> (main app factory, [(co-run label, [co factories]), ...])
FIG6_SCENARIOS = {
    "cpu": (
        lambda k: calib3d(k, iterations=40),
        [
            ("w/ body", [lambda k: bodytrack(k, iterations=300)]),
            ("w/ dedup", [lambda k: dedup(k, iterations=400)]),
        ],
    ),
    "dsp": (
        lambda k: dgemm(k, iterations=16),
        [
            ("w/ sgemm", [lambda k: sgemm(k, iterations=60)]),
            ("w/ monte+sgemm", [lambda k: monte(k, iterations=200),
                                lambda k: sgemm(k, iterations=60)]),
        ],
    ),
    "gpu": (
        gpu_browser,
        [
            ("w/ magic", [lambda k: magic(k, frames=120)]),
            ("w/ triangle", [lambda k: triangle(k, draws=600)]),
        ],
    ),
    "wifi": (
        wifi_browser,
        [
            ("w/ scp", [scp]),
            ("w/ wget", [wget]),
        ],
    ),
}


@dataclass
class Fig6Cell:
    label: str
    energy_j: float
    delta_pct: float          # vs the "running alone" energy
    duration_s: float
    times: object = None      # sampled trace (optional)
    watts: object = None


@dataclass
class Fig6Row:
    component: str
    alone: Fig6Cell
    psbox_cells: list
    baseline_cells: list

    @property
    def max_psbox_delta(self):
        return max(abs(c.delta_pct) for c in self.psbox_cells)

    @property
    def max_baseline_delta(self):
        return max(abs(c.delta_pct) for c in self.baseline_cells)


def _run_scenario(component, main_factory, co_factories, use_psbox, seed,
                  horizon_s, keep_trace, trace_dt):
    platform, kernel = boot(seed=seed)
    app = main_factory(kernel)
    box = None
    if use_psbox:
        box = app.create_psbox((component,))
        box.enter()
    others = [factory(kernel) for factory in co_factories]
    finished_at = run_until_finished(platform, app, horizon_s=horizon_s)
    if use_psbox:
        energy = box.vmeter.energy(0, finished_at)
        trace = (box.vmeter.samples(component, 0, finished_at, trace_dt)
                 if keep_trace else (None, None))
    else:
        acct = PerSampleUsageAccounting(platform, component)
        ids = [app.id] + [o.id for o in others]
        energy = acct.energies(ids, 0, finished_at)[app.id]
        if keep_trace:
            times, shares = acct.shares(ids, 0, finished_at, dt=trace_dt)
            trace = (times, shares[app.id])
        else:
            trace = (None, None)
    return energy, finished_at / 1e9, trace


def run_fig6_row(component, seed=3, horizon_s=14, keep_traces=False,
                 trace_dt=MSEC):
    """One row of Figure 6 (five cells x two mechanisms)."""
    main_factory, coruns = FIG6_SCENARIOS[component]

    alone_e, alone_t, alone_trace = _run_scenario(
        component, main_factory, [], True, seed, horizon_s, keep_traces,
        trace_dt)
    alone = Fig6Cell("alone", alone_e, 0.0, alone_t,
                     times=alone_trace[0], watts=alone_trace[1])

    psbox_cells = []
    for label, co in coruns:
        e, t, trace = _run_scenario(component, main_factory, co, True, seed,
                                    horizon_s, keep_traces, trace_dt)
        psbox_cells.append(Fig6Cell(label, e, percent_delta(e, alone_e), t,
                                    times=trace[0], watts=trace[1]))

    base_alone_e, _t, _tr = _run_scenario(
        component, main_factory, [], False, seed, horizon_s, False, trace_dt)
    baseline_cells = []
    for label, co in coruns:
        e, t, trace = _run_scenario(component, main_factory, co, False, seed,
                                    horizon_s, keep_traces, trace_dt)
        baseline_cells.append(
            Fig6Cell(label, e, percent_delta(e, base_alone_e), t,
                     times=trace[0], watts=trace[1]))

    return Fig6Row(component=component, alone=alone,
                   psbox_cells=psbox_cells, baseline_cells=baseline_cells)
