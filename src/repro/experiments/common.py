"""Shared scaffolding for experiment drivers."""

from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel, KernelConfig
from repro.obs import runtime as obs_runtime
from repro.sim.clock import SEC


def boot(seed=0, config=None, components=None, n_cpu_cores=2):
    """Fresh platform + kernel.

    When the process-global observability runtime is configured (the
    ``--trace`` / ``--metrics`` / ``--profile`` CLI flags), every booted
    simulator gets an :class:`repro.obs.Obs` session installed; otherwise
    this is a pure no-op and the run stays bit-identical.
    """
    if components is None:
        platform = Platform.full(seed=seed, n_cpu_cores=n_cpu_cores)
    else:
        platform = Platform(
            __import__("repro.sim.engine", fromlist=["Simulator"]).Simulator(seed),
            components=components,
            n_cpu_cores=n_cpu_cores,
        )
    kernel = Kernel(platform, config=config or KernelConfig())
    obs_runtime.install(platform.sim, kernel=kernel)
    return platform, kernel


def run_until_finished(platform, app, horizon_s=12):
    """Advance the sim until ``app`` finishes (or the horizon trips)."""
    platform.sim.run(until=int(horizon_s * SEC))
    if not app.finished:
        raise RuntimeError(
            "app {!r} did not finish within {}s of simulated time".format(
                app.name, horizon_s
            )
        )
    return app.finished_at
