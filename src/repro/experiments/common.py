"""Shared scaffolding for experiment drivers."""

from repro.hw.platform import Platform
from repro.kernel.kernel import Kernel, KernelConfig
from repro.sim.clock import SEC


def boot(seed=0, config=None, components=None, n_cpu_cores=2):
    """Fresh platform + kernel."""
    if components is None:
        platform = Platform.full(seed=seed, n_cpu_cores=n_cpu_cores)
    else:
        platform = Platform(
            __import__("repro.sim.engine", fromlist=["Simulator"]).Simulator(seed),
            components=components,
            n_cpu_cores=n_cpu_cores,
        )
    kernel = Kernel(platform, config=config or KernelConfig())
    return platform, kernel


def run_until_finished(platform, app, horizon_s=12):
    """Advance the sim until ``app`` finishes (or the horizon trips)."""
    platform.sim.run(until=int(horizon_s * SEC))
    if not app.finished:
        raise RuntimeError(
            "app {!r} did not finish within {}s of simulated time".format(
                app.name, horizon_s
            )
        )
    return app.finished_at
