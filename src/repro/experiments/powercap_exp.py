"""Closed-loop power capping over psbox meters (extension experiment).

Two tenants share the full board under an oversubscribed budget tree:

* tenant A — calib3d on the CPU plus the magic render loop on the GPU,
  both sized to stay busy for the whole run;
* tenant B — bodytrack on the CPU plus an scp bulk transfer on WiFi,
  both sized to finish mid-run and go idle.

Phase one runs the mix uncapped and measures the aggregate draw; phase two
reboots the identical scenario with the powercap daemon enforcing a
platform cap of 70% of that peak.  The run demonstrates the three claims:

1. **compliance** — aggregate rail power settles within a few percent of
   the cap while both tenants contend;
2. **slack redistribution** — once tenant B idles, the water-filling pass
   hands its unused budget to tenant A's leaves (grants rise);
3. **determinism** — the daemon is ordinary simulation machinery, so a
   fixed seed reproduces the telemetry bit for bit.
"""

from dataclasses import dataclass

from repro.apps.cpu_apps import bodytrack, calib3d
from repro.apps.gpu_apps import magic
from repro.apps.wifi_apps import scp
from repro.experiments.common import boot
from repro.powercap import (
    BalloonAdmissionActuator,
    BudgetTree,
    CfsBandwidthActuator,
    GovernorClampActuator,
    LeafBinding,
    PowerCapController,
)
from repro.sim.clock import SEC, from_msec


@dataclass
class PowercapResult:
    uncapped_w: float            # aggregate draw without the daemon
    cap_w: float                 # enforced platform cap (70% of uncapped)
    steady_w: float              # aggregate draw in the contended window
    compliance_pct: float        # (steady - cap) / cap * 100
    relaxed_w: float             # aggregate draw after tenant B idles
    grants_contended: dict       # leaf -> mean grant W while B is busy
    grants_relaxed: dict         # leaf -> mean grant W after B idles
    tenant_a_gain_w: float       # A's grant growth from B's freed slack
    tenant_b_idle_w: float       # B's residual measured draw when idle
    throttle_actions: int        # actuator applications over the run
    telemetry_json: str          # exported ring (for determinism checks)


#: windows (in seconds) used by the analysis below
CONTENDED_WINDOW = (2.5, 4.0)
RELAXED_WINDOW = (6.0, 7.5)
HORIZON_S = 8


def _scenario(seed):
    """The mixed CPU+GPU+WiFi two-tenant workload, psboxes entered."""
    platform, kernel = boot(seed=seed)
    a_cpu = calib3d(kernel, name="a.calib3d", iterations=10**6)
    a_gpu = magic(kernel, name="a.magic", frames=10**6)
    b_cpu = bodytrack(kernel, name="b.bodytrack", iterations=420)
    b_net = scp(kernel, name="b.scp", total_bytes=9_000_000)
    boxes = {
        "a.cpu": a_cpu.create_psbox(("cpu",)),
        "a.gpu": a_gpu.create_psbox(("gpu",)),
        "b.cpu": b_cpu.create_psbox(("cpu",)),
        "b.net": b_net.create_psbox(("wifi",)),
    }
    for box in boxes.values():
        box.enter()
    apps = {"a.cpu": a_cpu, "a.gpu": a_gpu, "b.cpu": b_cpu, "b.net": b_net}
    return platform, kernel, apps, boxes


def _aggregate(platform, t0, t1):
    return sum(rail.mean_power(t0, t1) for rail in platform.rails.values())


def build_budget_tree(cap_w, tenant_fraction=0.75):
    """Platform cap with two oversubscribed tenant caps beneath it."""
    return BudgetTree.from_spec({
        "name": "platform", "cap_w": cap_w, "children": [
            {"name": "tenant-a", "cap_w": tenant_fraction * cap_w,
             "children": [{"name": "a.cpu"}, {"name": "a.gpu"}]},
            {"name": "tenant-b", "cap_w": tenant_fraction * cap_w,
             "children": [{"name": "b.cpu"}, {"name": "b.net"}]},
        ],
    })


def build_bindings(kernel, apps, boxes):
    """Wire each leaf to its psbox and component-appropriate actuators."""
    return [
        LeafBinding("a.cpu", boxes["a.cpu"], actuators=(
            GovernorClampActuator(kernel.cpu_governor,
                                  (boxes["a.cpu"].ctx_key,)),
            CfsBandwidthActuator(kernel.smp, apps["a.cpu"]),
        )),
        LeafBinding("a.gpu", boxes["a.gpu"], actuators=(
            GovernorClampActuator(kernel.gpu_governor,
                                  (boxes["a.gpu"].ctx_key,)),
            BalloonAdmissionActuator(kernel.gpu_sched, apps["a.gpu"],
                                     period=from_msec(40)),
        )),
        LeafBinding("b.cpu", boxes["b.cpu"], actuators=(
            GovernorClampActuator(kernel.cpu_governor,
                                  (boxes["b.cpu"].ctx_key,)),
            CfsBandwidthActuator(kernel.smp, apps["b.cpu"]),
        )),
        LeafBinding("b.net", boxes["b.net"], actuators=(
            BalloonAdmissionActuator(kernel.net_sched, apps["b.net"],
                                     period=from_msec(60)),
        )),
    ]


def _mean_grants(telemetry, nodes, t0, t1):
    grants = {}
    for node in nodes:
        entries = telemetry.records(node=node, t0=t0, t1=t1)
        grants[node] = (
            sum(entry["budget_w"] for entry in entries) / len(entries)
            if entries else 0.0
        )
    return grants


def run_powercap(seed=11, cap_fraction=0.70, horizon_s=HORIZON_S):
    """The full experiment: uncapped peak, then the capped closed loop."""
    lo, hi = (int(t * SEC) for t in CONTENDED_WINDOW)
    relax_lo, relax_hi = (int(t * SEC) for t in RELAXED_WINDOW)

    # Phase 1 — uncapped peak over the contended window.
    platform, _kernel, _apps, _boxes = _scenario(seed)
    platform.sim.run(until=horizon_s * SEC)
    uncapped_w = _aggregate(platform, lo, hi)

    # Phase 2 — identical scenario under the daemon.
    cap_w = cap_fraction * uncapped_w
    platform, kernel, apps, boxes = _scenario(seed)
    tree = build_budget_tree(cap_w)
    controller = PowerCapController(
        kernel, tree, build_bindings(kernel, apps, boxes)
    ).start()
    platform.sim.run(until=horizon_s * SEC)

    steady_w = _aggregate(platform, lo, hi)
    relaxed_w = _aggregate(platform, relax_lo, relax_hi)
    leaves = ["a.cpu", "a.gpu", "b.cpu", "b.net"]
    grants_contended = _mean_grants(controller.telemetry, leaves, lo, hi)
    grants_relaxed = _mean_grants(controller.telemetry, leaves,
                                  relax_lo, relax_hi)
    b_idle_entries = controller.telemetry.records(node="b.cpu", t0=relax_lo,
                                                  t1=relax_hi)
    tenant_b_idle_w = (
        sum(e["measured_w"] for e in b_idle_entries) / len(b_idle_entries)
        if b_idle_entries else 0.0
    )
    throttle_actions = sum(
        1 for entry in controller.telemetry.records()
        if entry["action"] in ("throttle", "relax")
    )
    return PowercapResult(
        uncapped_w=uncapped_w,
        cap_w=cap_w,
        steady_w=steady_w,
        compliance_pct=(steady_w - cap_w) / cap_w * 100.0,
        relaxed_w=relaxed_w,
        grants_contended=grants_contended,
        grants_relaxed=grants_relaxed,
        tenant_a_gain_w=(
            grants_relaxed["a.cpu"] + grants_relaxed["a.gpu"]
            - grants_contended["a.cpu"] - grants_contended["a.gpu"]
        ),
        tenant_b_idle_w=tenant_b_idle_w,
        throttle_actions=throttle_actions,
        telemetry_json=controller.telemetry.to_json(),
    )
