"""Figure 9 / §6.4: the power-aware VR app.

The rendering task observes its own CPU power inside its psbox (insulated
from the gesture task's input-dependent load) and trades fidelity for
power.  We report: the power trace of rendering-in-psbox vs everything
else, the fidelity range achieved across power budgets, and the power span
(the paper reports 8.9x, 90 mW to 800 mW).
"""

from dataclasses import dataclass

from repro.apps.vr import FIDELITY_LEVELS, VrApp
from repro.experiments.common import boot
from repro.sim.clock import MSEC, SEC


@dataclass
class Fig9Result:
    budgets_w: list
    observed_w: list           # steady-state observed power per budget
    fidelity: list             # steady-state fidelity per budget
    times: object = None       # trace for one representative run
    rendering_watts: object = None
    total_watts: object = None

    @property
    def power_span(self):
        low = min(self.observed_w)
        return max(self.observed_w) / low if low > 0 else float("inf")


def _steady_power(vr, t0, t1):
    """Mean observed rendering power over a window (psbox reading)."""
    return vr.psbox.energy(int(t0), int(t1)) / ((t1 - t0) / 1e9)


def run_fig9(seed=17, budgets_w=(0.10, 0.20, 0.35, 0.55, 0.80),
             duration_s=4.0, trace_budget_index=2, dt=MSEC):
    duration = int(duration_s * SEC)
    observed, fidelity = [], []
    trace = (None, None, None)
    for idx, budget in enumerate(budgets_w):
        platform, kernel = boot(seed=seed)
        vr = VrApp(kernel, budget_w=budget, fidelity=3, duration=duration)
        platform.sim.run(until=duration)
        window = (int(duration * 0.6), int(duration * 0.95))
        observed.append(_steady_power(vr, *window))
        fidelity.append(vr.fidelity)
        if idx == trace_budget_index:
            times, render_w = vr.psbox.sample("cpu", 0, duration, dt)
            _t, total_w = platform.meter.sample("cpu", 0, duration, dt)
            trace = (times, render_w, total_w)
        vr.stop()
    return Fig9Result(
        budgets_w=list(budgets_w),
        observed_w=observed,
        fidelity=fidelity,
        times=trace[0],
        rendering_watts=trace[1],
        total_watts=trace[2],
    )


def fidelity_power_span(seed=18, duration_s=2.5):
    """Open-loop power at the lowest and highest fidelity (the 8.9x claim)."""
    duration = int(duration_s * SEC)
    span = []
    for level in (0, len(FIDELITY_LEVELS) - 1):
        platform, kernel = boot(seed=seed)
        vr = VrApp(kernel, budget_w=None, fidelity=level, duration=duration)
        platform.sim.run(until=duration)
        window = (int(duration * 0.4), int(duration * 0.95))
        span.append(_steady_power(vr, *window))
        vr.stop()
    return span[0], span[1]
