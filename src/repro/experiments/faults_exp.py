"""Fault-injection campaign: scenario matrix vs. the invariant checker.

Runs every named scenario in :mod:`repro.faults.scenarios` with its plan
armed and an :class:`~repro.check.InvariantChecker` attached, then
classifies each run: **tolerated** (faults injected, all invariants held)
or **detected** (the checker reported violations naming event, time and
component).  A campaign passes when every scenario lands on its expected
side — i.e. no fault is ever silently absorbed into corrupted state.

Two workloads back the matrix:

* ``mixed`` — the full board with two sandboxed CPU apps, a sandboxed GPU
  client and a sandboxed WiFi client, each contending with unsandboxed
  rivals, so spatial balloons, temporal balloons, loans and vmeter windows
  are all continuously exercised;
* ``powercap`` — the two-tenant capped scenario from
  :mod:`repro.experiments.powercap_exp`, with the checker also watching
  the daemon's root cap.

``python -m repro.experiments faults`` runs one campaign at seed 0; the
module's own CLI adds ``--seeds N`` for the nightly multi-seed soak.
"""

import argparse
import sys
from dataclasses import asdict, dataclass

import numpy as np

from repro.apps.base import App
from repro.check import InvariantChecker
from repro.experiments.common import boot
from repro.experiments.powercap_exp import (
    _scenario as _powercap_scenario,
    build_bindings,
    build_budget_tree,
)
from repro.faults import DETECTED, SCENARIOS, TOLERATED, TaskCrashInjector, scenario
from repro.par import ParallelRunner, ResultCache, effective_jobs, work_list
from repro.kernel.actions import Compute, SendPacket, Sleep, SubmitAccel
from repro.powercap import PowerCapController
from repro.sim.clock import SEC, from_msec, from_usec


@dataclass
class Workload:
    platform: object
    kernel: object
    boxes: dict                  # label -> entered PowerSandbox
    crash_targets: list          # (app, behavior_factory) for TaskCrashInjector
    horizon_ns: int
    controller: object = None    # powercap daemon, when the workload has one


# -- workload builders ------------------------------------------------------------

MIXED_HORIZON_S = 1.2
POWERCAP_MEASURE_S = 2.0
POWERCAP_HORIZON_S = 3.5
POWERCAP_CAP_FRACTION = 0.70


def _cpu_behavior(app, burst, pause_ns):
    def behavior():
        while True:
            yield Compute(burst)
            app.count("work", 1)
            yield Sleep(pause_ns)

    return behavior


def _gpu_behavior(app, cycles=2e6, power=0.6, gap_ns=from_usec(500)):
    def behavior():
        while True:
            yield SubmitAccel("gpu", "draw", cycles, power, wait=True)
            app.count("frames", 1)
            yield Sleep(gap_ns)

    return behavior


def _net_behavior(app, size=24_000, gap_ns=from_usec(2000)):
    def behavior():
        while True:
            yield SendPacket(size, wait=True)
            app.count("packets", 1)
            yield Sleep(gap_ns)

    return behavior


def _mixed_workload(seed):
    """Full board; CPU/GPU/WiFi sandboxes contending with rivals."""
    platform, kernel = boot(seed=seed)
    crash_targets = []

    def add(name, make_behavior, *params):
        app = App(kernel, name)
        factory = make_behavior(app, *params)
        app.spawn(factory())
        crash_targets.append((app, factory))
        return app

    boxed_one = add("boxed.one", _cpu_behavior, 4e6, from_usec(150))
    boxed_two = add("boxed.two", _cpu_behavior, 3.5e6, from_usec(250))
    add("rival.one", _cpu_behavior, 3e6, from_usec(200))
    add("rival.two", _cpu_behavior, 2.5e6, from_usec(300))
    boxed_gpu = add("boxed.gpu", _gpu_behavior)
    add("rival.gpu", _gpu_behavior, 1.5e6, 0.5, from_usec(700))
    boxed_net = add("boxed.net", _net_behavior)
    add("rival.net", _net_behavior, 16_000, from_usec(2600))

    boxes = {
        "one.cpu": boxed_one.create_psbox(("cpu",)),
        "two.cpu": boxed_two.create_psbox(("cpu",)),
        "gpu": boxed_gpu.create_psbox(("gpu",)),
        "net": boxed_net.create_psbox(("wifi",)),
    }
    for box in boxes.values():
        box.enter()
    return Workload(platform, kernel, boxes, crash_targets,
                    horizon_ns=int(MIXED_HORIZON_S * SEC))


#: measured uncapped aggregate per seed (deterministic, so safe to reuse
#: across the campaign and the differential tests)
_UNCAPPED_CACHE = {}


def _uncapped_aggregate(seed):
    if seed not in _UNCAPPED_CACHE:
        platform, _kernel, _apps, _boxes = _powercap_scenario(seed)
        platform.sim.run(until=int(POWERCAP_MEASURE_S * SEC))
        _UNCAPPED_CACHE[seed] = sum(
            rail.mean_power(int(1.0 * SEC), int(POWERCAP_MEASURE_S * SEC))
            for rail in platform.rails.values()
        )
    return _UNCAPPED_CACHE[seed]


def _powercap_workload(seed):
    """The two-tenant capped mix, daemon started, cap at 70% of peak."""
    cap_w = POWERCAP_CAP_FRACTION * _uncapped_aggregate(seed)
    platform, kernel, apps, boxes = _powercap_scenario(seed)
    controller = PowerCapController(
        kernel, build_budget_tree(cap_w), build_bindings(kernel, apps, boxes)
    ).start()
    return Workload(platform, kernel, boxes, crash_targets=[],
                    horizon_ns=int(POWERCAP_HORIZON_S * SEC),
                    controller=controller)


WORKLOADS = {"mixed": _mixed_workload, "powercap": _powercap_workload}


def build_workload(name, seed):
    return WORKLOADS[name](seed)


# -- running one scenario ---------------------------------------------------------


@dataclass
class ScenarioOutcome:
    name: str
    workload: str
    expect: str
    injections: int
    violations: int
    checks: int
    outcome: str
    matches: bool
    first_violation: str = ""


def run_scenario(scn, seed=0, inject=True, check=True, config=None):
    """Run one scenario end to end and classify the outcome."""
    work = build_workload(scn.workload, seed)
    plan = scn.build_plan(work.platform.sim, enabled=inject)
    checker = None
    if check:
        checker = InvariantChecker(work.kernel, config=config).attach()
        if work.controller is not None:
            checker.watch_powercap(work.controller)
    if any(site == TaskCrashInjector.SITE for site, _kind, _p in scn.faults):
        TaskCrashInjector(work.kernel, work.crash_targets).start()
    work.platform.sim.run(until=work.horizon_ns)
    for box in work.boxes.values():
        # exercise the meter.sample site the way an app would
        if box.entered:
            box.sample(dt=from_msec(5))

    injections = plan.injections()
    violations = len(checker.report.violations) if checker else 0
    checks = checker.report.checks if checker else 0
    outcome = DETECTED if violations else TOLERATED
    matches = outcome == scn.expect
    if inject and scn.faults and injections == 0:
        matches = False    # armed but never fired: the run proves nothing
    first = str(checker.report.violations[0]) if violations else ""
    return ScenarioOutcome(
        name=scn.name, workload=scn.workload, expect=scn.expect,
        injections=injections, violations=violations, checks=checks,
        outcome=outcome, matches=matches, first_violation=first,
    )


# -- the campaign -----------------------------------------------------------------


@dataclass
class CampaignResult:
    seed: int
    outcomes: list

    @property
    def ok(self):
        return all(outcome.matches for outcome in self.outcomes)

    @property
    def mismatches(self):
        return [outcome for outcome in self.outcomes if not outcome.matches]


def run_faults(seed=0, scenarios=SCENARIOS):
    """Run the whole scenario matrix at one seed."""
    return CampaignResult(
        seed=seed,
        outcomes=[run_scenario(scn, seed=seed) for scn in scenarios],
    )


def soak_seeds(n, entropy=0):
    """The nightly soak's seed list: ``n`` words from one seed sequence."""
    return [int(s) for s in np.random.SeedSequence(entropy).generate_state(n)]


# -- the parallel campaign (repro.par) --------------------------------------------


#: the dotted entry point spawn-started workers import
CELL_RUNNER = "repro.experiments.faults_exp:run_scenario_cell"


def run_scenario_cell(seed, config):
    """Spawn-safe cell runner: one (scenario, seed) cell of the campaign."""
    outcome = run_scenario(scenario(config["scenario"]), seed=seed)
    return asdict(outcome)


def fingerprint_cell(seed, config):
    """Spawn-safe cell: run a workload, return its sha256 trace fingerprint.

    The differential tests use this to prove the worker protocol itself is
    bit-clean: a workload booted inside a spawned worker must fingerprint
    identically to the same workload booted in the parent process.
    """
    from repro.faults import fingerprint

    work = build_workload(config.get("workload", "mixed"), seed)
    work.platform.sim.run(until=work.horizon_ns)
    return {"fingerprint": fingerprint(work.platform, work.kernel)}


def campaign_items(seeds, scenarios=SCENARIOS):
    """The campaign's work-list: seed-major, scenario order within a seed."""
    return work_list(
        "faults", CELL_RUNNER,
        [(int(seed), {"scenario": scn.name})
         for seed in seeds for scn in scenarios],
    )


def run_faults_parallel(seeds, jobs=1, cache=None, scenarios=SCENARIOS,
                        obs_metrics=False, backend="auto"):
    """The scenario matrix at many seeds, fanned across ``jobs`` processes.

    Cells are bit-reproducible and the merge orders by shard key, so the
    returned campaigns are identical to ``[run_faults(s) for s in seeds]``
    no matter the job count, backend, or cache state.  Returns
    ``(campaigns, runner)`` — the runner carries stats and the aggregated
    per-worker obs metrics.
    """
    runner = ParallelRunner(jobs=jobs, cache=cache, obs_metrics=obs_metrics,
                            backend=backend)
    payloads = runner.run(campaign_items(seeds, scenarios))
    per_seed = len(scenarios)
    campaigns = [
        CampaignResult(
            seed=int(seed),
            outcomes=[ScenarioOutcome(**payload)
                      for payload in payloads[i * per_seed:(i + 1) * per_seed]],
        )
        for i, seed in enumerate(seeds)
    ]
    return campaigns, runner


def campaign_summary_lines(campaign):
    """The soak report's lines for one campaign (shared by both CLIs)."""
    lines = ["seed {:>10}: {:2d}/{} scenarios matched  [{}]".format(
        campaign.seed, len(campaign.outcomes) - len(campaign.mismatches),
        len(campaign.outcomes), "ok" if campaign.ok else "FAIL")]
    for outcome in campaign.mismatches:
        lines.append("  MISMATCH {}: expected {}, got {} "
                     "({} injections, {} violations) {}".format(
                         outcome.name, outcome.expect, outcome.outcome,
                         outcome.injections, outcome.violations,
                         outcome.first_violation))
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.faults_exp",
        description="Run the fault-injection campaign.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="single campaign seed (default 0)")
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="soak mode: run N seeds drawn from --entropy")
    parser.add_argument("--entropy", type=int, default=0,
                        help="seed-sequence entropy for --seeds")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan (scenario, seed) cells across N processes "
                             "(default 1; output is byte-identical either "
                             "way)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed result cache: completed "
                             "cells are skipped on re-runs (invalidated by "
                             "any repro source change)")
    parser.add_argument("--backend",
                        choices=["auto", "inline", "thread", "spawn",
                                 "socket"],
                        default="auto",
                        help="execution backend for the cells (default "
                             "auto: cost-model selection)")
    args = parser.parse_args(argv)
    try:
        args.jobs = effective_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))

    seeds = (soak_seeds(args.seeds, args.entropy)
             if args.seeds is not None else [args.seed])
    cache = ResultCache(args.cache) if args.cache else None
    campaigns, runner = run_faults_parallel(seeds, jobs=args.jobs,
                                            cache=cache,
                                            backend=args.backend)
    failed = 0
    for campaign in campaigns:
        failed += len(campaign.mismatches)
        for line in campaign_summary_lines(campaign):
            print(line)
    if args.jobs > 1 or cache is not None:
        # stats go to stderr so the stdout report stays byte-identical to
        # the serial run (the differential test's contract)
        print(runner.stats.summary(), file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
