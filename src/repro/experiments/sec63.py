"""Section 6.3 robustness test: extreme GPU contention.

browser (in psbox) co-runs with triangle, a synthetic saturating stressor.
The paper: browser's GPU throughput drops ~4x from excessive draining, yet
triangle loses only ~1% — the loss is confined to the sandboxed app.
"""

from dataclasses import dataclass

from repro.apps.gpu_apps import triangle
from repro.experiments.common import boot
from repro.sim.clock import SEC


def _looping_browser(kernel, pages=10_000):
    """The Fig-6 browser page load, repeated forever (for rate measurement)."""
    from repro.apps.base import App
    from repro.kernel.actions import Sleep, SubmitAccel, WaitAll
    from repro.sim.clock import from_msec

    app = App(kernel, "browser")
    raster = ("raster", 1.2e6, 0.80)
    composite = ("composite", 0.8e6, 0.60)
    bursts = [(12, [raster, composite]), (20, [raster, composite])]

    def behavior():
        for _ in range(pages):
            for gap_ms, commands in bursts:
                yield Sleep(from_msec(gap_ms))
                for kind, cycles, power_w in commands:
                    yield SubmitAccel("gpu", kind, cycles, power_w,
                                      wait=False)
                yield WaitAll()
            app.count("pages", 1)

    app.spawn(behavior(), name="browser.render")
    return app


@dataclass
class Sec63Result:
    browser_before: float
    browser_after: float
    triangle_before: float
    triangle_after: float

    @property
    def browser_slowdown(self):
        if self.browser_after == 0:
            return float("inf")
        return self.browser_before / self.browser_after

    @property
    def triangle_loss_pct(self):
        if self.triangle_before == 0:
            return 0.0
        return 100.0 * (self.triangle_before - self.triangle_after) \
            / self.triangle_before


def run_sec63_robustness(seed=21, phase_s=2.5, settle_s=0.5):
    platform, kernel = boot(seed=seed)
    browser = _looping_browser(kernel)
    tri = triangle(kernel, draws=10**6, cycles=50.0e6)
    box = browser.create_psbox(("gpu",))

    settle = int(settle_s * SEC)
    phase = int(phase_s * SEC)
    t1 = settle + phase
    t2 = t1 + settle
    t3 = t2 + phase
    platform.sim.at(t1, box.enter)
    platform.sim.run(until=t3)

    return Sec63Result(
        browser_before=browser.rate("gpu_commands", settle, t1),
        browser_after=browser.rate("gpu_commands", t2, t3),
        triangle_before=tri.rate("gpu_commands", settle, t1),
        triangle_after=tri.rate("gpu_commands", t2, t3),
    )
