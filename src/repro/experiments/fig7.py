"""Figure 7: resource multiplexing detail, without and with psbox.

(a)/(b): dual-core CPU schedule (per-core owner timelines) and rail power
while calib3d co-runs with bodytrack — spatial balloons force the sibling
core idle while calib3d's psbox holds the cluster.

(c)/(d): DSP command timeline and rail power while dgemm co-runs with
sgemm and monte — temporal balloons keep foreign commands out of dgemm's
in-flight windows.

Beyond the paper's two panels, the same detail is generated for the GPU
(browser + magic) and the WiFi NIC (browser + scp) so the balloon-boundary
invariant is demonstrated on every component.
"""

from dataclasses import dataclass

from repro.apps.cpu_apps import bodytrack, calib3d
from repro.apps.dsp_apps import dgemm, monte, sgemm
from repro.apps.gpu_apps import gpu_browser, magic
from repro.apps.wifi_apps import scp, wifi_browser
from repro.experiments.common import boot
from repro.sim.clock import MSEC, SEC


@dataclass
class Fig7CpuResult:
    core_owner_segments: list      # per core: [(t0, t1, app_id), ...]
    times: object
    watts: object
    psbox_app_id: int
    windows: list                  # balloon windows [(t0, t1)]
    forced_idle_ns: int            # sibling-core idle inside balloons


def run_fig7_cpu(use_psbox=True, seed=7, duration=2 * SEC, dt=MSEC):
    platform, kernel = boot(seed=seed)
    a = calib3d(kernel, iterations=2000)
    b = bodytrack(kernel, iterations=2000)
    box = None
    if use_psbox:
        box = a.create_psbox(("cpu",))
        box.enter()
    platform.sim.run(until=duration)

    segments = []
    for trace in platform.cpu.owner_traces:
        segments.append([
            (t0, t1, int(owner))
            for t0, t1, owner in trace.segments(0, duration)
        ])
    times, watts = platform.meter.sample("cpu", 0, duration, dt)
    windows = box.vmeter.windows("cpu", 0, duration) if use_psbox else []

    forced_idle = 0
    for lo, hi in windows:
        for core_segments in segments:
            for t0, t1, owner in core_segments:
                if owner == -1:
                    s, e = max(t0, lo), min(t1, hi)
                    if e > s:
                        forced_idle += e - s
    return Fig7CpuResult(
        core_owner_segments=segments, times=times, watts=watts,
        psbox_app_id=a.id, windows=windows, forced_idle_ns=forced_idle,
    )


@dataclass
class Fig7DspResult:
    commands: list                 # (app_id, kind, dispatch_t, complete_t)
    times: object
    watts: object
    psbox_app_id: int
    windows: list
    foreign_overlap_ns: int        # foreign in-flight time inside windows


def run_fig7_dsp(use_psbox=True, seed=7, duration=5 * SEC, dt=MSEC):
    platform, kernel = boot(seed=seed)
    a = dgemm(kernel, iterations=100)
    b = sgemm(kernel, iterations=200)
    c = monte(kernel, iterations=500)
    box = None
    if use_psbox:
        box = a.create_psbox(("dsp",))
        box.enter()
    platform.sim.run(until=duration)

    dispatches = {}
    commands = []
    for t, kind, payload in platform.dsp.log:
        if kind == "dispatch":
            dispatches[payload["seq"]] = (t, payload)
        elif kind == "complete" and payload["seq"] in dispatches:
            t0, info = dispatches.pop(payload["seq"])
            commands.append((info["app"], info["cmd_kind"], t0, t))
    times, watts = platform.meter.sample("dsp", 0, duration, dt)
    windows = box.vmeter.windows("dsp", 0, duration) if use_psbox else []

    foreign_overlap = 0
    for lo, hi in windows:
        for app_id, _kind, t0, t1 in commands:
            if app_id != a.id:
                s, e = max(t0, lo), min(t1, hi)
                if e > s:
                    foreign_overlap += e - s
    return Fig7DspResult(
        commands=commands, times=times, watts=watts, psbox_app_id=a.id,
        windows=windows, foreign_overlap_ns=foreign_overlap,
    )


def _engine_commands(log):
    dispatches = {}
    commands = []
    for t, kind, payload in log:
        if kind == "dispatch":
            dispatches[payload["seq"]] = (t, payload)
        elif kind == "complete" and payload["seq"] in dispatches:
            t0, info = dispatches.pop(payload["seq"])
            commands.append((info["app"], info.get("cmd_kind", ""), t0, t))
    return commands


def run_fig7_gpu(use_psbox=True, seed=7, duration=2 * SEC, dt=MSEC):
    """GPU analogue of Fig 7(c)/(d): browser* + magic command timelines."""
    platform, kernel = boot(seed=seed)
    a = gpu_browser(kernel)
    b = magic(kernel, frames=100_000)
    box = None
    if use_psbox:
        box = a.create_psbox(("gpu",))
        box.enter()
    platform.sim.run(until=duration)

    commands = _engine_commands(platform.gpu.log)
    times, watts = platform.meter.sample("gpu", 0, duration, dt)
    windows = box.vmeter.windows("gpu", 0, duration) if use_psbox else []
    foreign_overlap = 0
    for lo, hi in windows:
        for app_id, _kind, t0, t1 in commands:
            if app_id != a.id:
                foreign_overlap += max(0, min(t1, hi) - max(t0, lo))
    return Fig7DspResult(
        commands=commands, times=times, watts=watts, psbox_app_id=a.id,
        windows=windows, foreign_overlap_ns=foreign_overlap,
    )


def run_fig7_wifi(use_psbox=True, seed=7, duration=3 * SEC, dt=MSEC):
    """WiFi analogue: browser* + scp transmit timelines.

    The invariant concerns *transmission* only: reception cannot be
    deferred on commodity NICs (the paper's documented limitation).
    """
    platform, kernel = boot(seed=seed)
    a = wifi_browser(kernel, pages=20)
    b = scp(kernel, total_bytes=50_000_000)
    box = None
    if use_psbox:
        box = a.create_psbox(("wifi",))
        box.enter()
    platform.sim.run(until=duration)

    transmissions = []
    starts = {}
    for t, kind, payload in platform.nic.log:
        if kind == "tx_start":
            starts[payload["seq"]] = (t, payload)
        elif kind == "tx_end" and payload["seq"] in starts:
            t0, info = starts.pop(payload["seq"])
            transmissions.append((info["app"], "tx", t0, t))
    times, watts = platform.meter.sample("wifi", 0, duration, dt)
    windows = box.vmeter.windows("wifi", 0, duration) if use_psbox else []
    foreign_overlap = 0
    for lo, hi in windows:
        for app_id, _kind, t0, t1 in transmissions:
            if app_id != a.id:
                foreign_overlap += max(0, min(t1, hi) - max(t0, lo))
    return Fig7DspResult(
        commands=transmissions, times=times, watts=watts,
        psbox_app_id=a.id, windows=windows,
        foreign_overlap_ns=foreign_overlap,
    )
