"""Figure 8: confinement of throughput loss.

Several instances of the same app co-run; halfway through, one enters its
psbox.  Throughput per instance is compared before vs after: only the
sandboxed instance should lose throughput, the others stay put.
"""

from dataclasses import dataclass

from repro.apps.cpu_apps import calib3d
from repro.apps.dsp_apps import sgemm
from repro.apps.gpu_apps import cube
from repro.apps.wifi_apps import wget
from repro.experiments.common import boot
from repro.sim.clock import SEC

#: component -> (instance factory, throughput metric, instance count)
FIG8_SCENARIOS = {
    "cpu": (lambda k, i: calib3d(k, name="calib3d{}".format(i),
                                 iterations=10_000), "kb", 3),
    "dsp": (lambda k, i: sgemm(k, name="sgemm{}".format(i),
                               iterations=10_000), "gflop", 3),
    "gpu": (lambda k, i: cube(k, name="cube{}".format(i),
                              frames=100_000), "gpu_commands", 2),
    "wifi": (lambda k, i: wget(k, name="wget{}".format(i),
                               total_bytes=500_000_000), "kb", 2),
}


@dataclass
class Fig8Instance:
    name: str
    sandboxed: bool
    before: float      # throughput before the psbox is entered
    after: float       # throughput after

    @property
    def loss_pct(self):
        if self.before == 0:
            return 0.0
        return 100.0 * (self.before - self.after) / self.before


@dataclass
class Fig8Result:
    component: str
    metric: str
    instances: list

    @property
    def sandboxed(self):
        return next(i for i in self.instances if i.sandboxed)

    @property
    def others(self):
        return [i for i in self.instances if not i.sandboxed]

    @property
    def total_loss_pct(self):
        before = sum(i.before for i in self.instances)
        after = sum(i.after for i in self.instances)
        if before == 0:
            return 0.0
        return 100.0 * (before - after) / before


def run_fig8(component, seed=5, phase_s=2.0, settle_s=0.4):
    """Run one Figure 8 panel; returns before/after throughputs."""
    factory, metric, count = FIG8_SCENARIOS[component]
    platform, kernel = boot(seed=seed)
    apps = [factory(kernel, i + 1) for i in range(count)]
    target = apps[-1]
    box = target.create_psbox((component,))

    settle = int(settle_s * SEC)
    phase = int(phase_s * SEC)
    t1 = settle + phase          # end of the "before" phase
    t2 = t1 + settle             # start of the "after" window
    t3 = t2 + phase

    platform.sim.at(t1, box.enter)
    platform.sim.run(until=t3)

    instances = [
        Fig8Instance(
            name=app.name,
            sandboxed=app is target,
            before=app.rate(metric, settle, t1),
            after=app.rate(metric, t2, t3),
        )
        for app in apps
    ]
    return Fig8Result(component=component, metric=metric,
                      instances=instances)
