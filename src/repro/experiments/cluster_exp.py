"""The datacenter experiment: placement, calibration, global cap loop.

``python -m repro.experiments cluster`` drives the full
:mod:`repro.cluster` stack end to end:

1. **generate** — the standard traffic mix (diurnal curve with
   phase-staggered regional tenants, a flash crowd, tenant churn) sized
   in millions of simulated users;
2. **place** — the WattsApp-style engine assigns every instance to a node
   by predicted draw against headroom (spill / queue-delay fallbacks);
3. **calibrate** — each placed node runs once uncapped, one
   ``repro.par`` cell per node (``--jobs`` shards nodes across workers,
   ``--cache`` makes replays free), and the aligned cluster-wide peak
   prices the datacenter budget;
4. **enforce** — the global cap loop runs twice over identical nodes,
   once per :class:`~repro.cluster.allocators.GlobalAllocator`
   (nvPAX-style water-filling vs the PI baseline), head to head.

Everything derived is deterministic for a fixed seed; the run's metrics
are written as ``BENCH_cluster.json`` so CI can diff and archive them.
"""

import json
from dataclasses import dataclass, field

from repro.cluster import (
    Cluster,
    ClusterConfig,
    ClusterTelemetry,
    ClusterTopology,
    PIBaselineAllocator,
    PlacementEngine,
    PowerPredictor,
    WaterFillingAllocator,
    calibrate,
    cluster_peak_w,
    peak_concurrent_users,
    placement_quality,
    placements_by_node,
    standard_mix,
)
from repro.obs import runtime as obs_runtime

#: default shape of the acceptance run
DEFAULT_NODES = 8
DEFAULT_HORIZON_S = 6.0
DEFAULT_PEAK_USERS = 2_400_000
DEFAULT_BENCH_PATH = "BENCH_cluster.json"


@dataclass
class ClusterExperimentResult:
    """Everything one cluster campaign produced (all JSON-able)."""

    seed: int
    nodes: int
    horizon_s: float
    epoch_ms: int
    peak_users: int                    # peak concurrent users served
    instances: int                     # workload instances generated
    uncapped_peak_w: float             # aligned cluster peak, calibration
    budget_w: float                    # enforced datacenter cap
    cap_fraction: float
    placement: dict = field(default_factory=dict)
    runs: dict = field(default_factory=dict)     # allocator -> metrics
    predictor: dict = field(default_factory=dict)

    def bench(self):
        """The ``BENCH_cluster.json`` payload (stable key order)."""
        return {
            "experiment": "cluster",
            "seed": self.seed,
            "nodes": self.nodes,
            "horizon_s": self.horizon_s,
            "epoch_ms": self.epoch_ms,
            "peak_concurrent_users": self.peak_users,
            "instances": self.instances,
            "uncapped_peak_w": self.uncapped_peak_w,
            "budget_w": self.budget_w,
            "cap_fraction": self.cap_fraction,
            "placement": self.placement,
            "allocators": self.runs,
            "predictor": self.predictor,
        }


def run_cluster(seed=11, nodes=DEFAULT_NODES, horizon_s=DEFAULT_HORIZON_S,
                cap_fraction=0.70, peak_users=None,
                epoch_ms=250, jobs=1, cache=None, obs_metrics=False,
                backend="auto"):
    """The full campaign; returns ``(result, runner)``.

    ``peak_users`` defaults to the canonical 2.4M scaled by topology size
    (constant per-node pressure), so ``--nodes 2`` is a quick smoke run
    and ``--nodes 8`` the acceptance shape.  ``runner`` is the
    calibration phase's :class:`~repro.par.RunStats` carrier — callers
    print its summary to stderr so stdout stays byte-identical between
    serial and parallel runs.
    """
    if peak_users is None:
        peak_users = int(DEFAULT_PEAK_USERS * nodes / DEFAULT_NODES)
    topology = ClusterTopology.uniform(nodes)
    specs, _tenants = standard_mix(seed, horizon_s, peak_users=peak_users)
    predictor = PowerPredictor()
    engine = PlacementEngine(topology, predictor, horizon_s=horizon_s)
    placements = engine.place_all(specs)
    by_node = placements_by_node(placements)
    quality = placement_quality(placements, topology, horizon_s, engine)
    # One session for the campaign-level phases (placement), plus one per
    # allocator's cap loop below — all registered with the CLI runtime so
    # --trace/--metrics/--telemetry cover them.  None when nothing armed.
    campaign_telemetry = (ClusterTelemetry.for_runtime(label="cluster")
                          if obs_runtime.is_active() else None)
    if campaign_telemetry is not None:
        campaign_telemetry.on_placement(placements)

    payloads, runner = calibrate(topology, by_node, seed, horizon_s,
                                 epoch_ms, jobs=jobs, cache=cache,
                                 obs_metrics=obs_metrics, backend=backend)
    uncapped_peak = cluster_peak_w(payloads)
    budget = cap_fraction * uncapped_peak

    config = ClusterConfig(budget_w=budget, horizon_s=horizon_s,
                           epoch_ms=epoch_ms)
    result = ClusterExperimentResult(
        seed=seed, nodes=nodes, horizon_s=horizon_s, epoch_ms=epoch_ms,
        peak_users=peak_concurrent_users(specs, horizon_s),
        instances=len(specs),
        uncapped_peak_w=uncapped_peak,
        budget_w=round(budget, 6),
        cap_fraction=cap_fraction,
        placement=quality,
    )
    # The water-filling run feeds the predictor (the placement loop it
    # closes); the PI baseline runs blind so the comparison is pure
    # allocator-vs-allocator over identical nodes.
    for allocator, feed in ((WaterFillingAllocator(), True),
                            (PIBaselineAllocator(), False)):
        telemetry = (ClusterTelemetry.for_runtime(
                         label="cluster/" + allocator.name)
                     if obs_runtime.is_active() else None)
        cluster = Cluster(
            topology, by_node, allocator, config, seed=seed,
            predictor=predictor if feed else None,
            placements=placements if feed else None,
            telemetry=telemetry,
        )
        result.runs[allocator.name] = cluster.run().metrics
    result.predictor = predictor.stats()
    return result, runner


def write_bench(result, path=DEFAULT_BENCH_PATH):
    """Write the deterministic benchmark artifact; returns the path."""
    with open(path, "w") as handle:
        json.dump(result.bench(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
