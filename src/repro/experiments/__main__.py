"""Command-line experiment runner.

Regenerate the paper's figures/tables without pytest::

    python -m repro.experiments fig3 fig6 fig8
    python -m repro.experiments all
    python -m repro.experiments --list

Observability (``repro.obs``) rides along on any run::

    python -m repro.experiments fig6 --trace fig6.json      # Perfetto/Chrome
    python -m repro.experiments fig6 --metrics metrics.json # counters etc.
    python -m repro.experiments fig6 --profile              # host hotspots
    python -m repro.experiments cluster --telemetry --report
                            # virtual-time series, OpenMetrics, merged
                            # trace, SLO/alert report under ./telemetry/

Multi-run workloads fan out across processes (``repro.par``) with results
byte-identical to the serial run, and a content-addressed cache skips
completed cells on re-runs::

    python -m repro.experiments faults --seeds 25 --jobs 8
    python -m repro.experiments sweep --jobs 4 --cache .parcache

When something goes wrong, the flight recorder and the explain engine
turn alerts into root-cause incident reports::

    python -m repro.experiments cluster --telemetry --flight
                            # black-box dumps under ./flight/ on any
                            # fired alert or invariant violation
    python -m repro.experiments explain telemetry   # or a flight dump
                            # incidents.json / incidents.txt /
                            # incident_trace.json next to the evidence
"""

import argparse
import sys

from repro.analysis.report import format_series, format_table
from repro.obs import runtime as obs_runtime
from repro.par import effective_jobs


def run_fig3():
    from repro.experiments.fig3 import (
        run_fig3a_spatial,
        run_fig3b_requests,
        run_fig3c_lingering,
    )

    a = run_fig3a_spatial()
    print(format_table(
        ["series", "mean W"],
        [["2 instances", "{:.2f}".format(a.mean_two)],
         ["1 instance doubled", "{:.2f}".format(a.mean_one_doubled)]],
        title="Fig 3a — spatial concurrency",
    ))
    print("doubling overestimates by {:+.0f}%\n".format(a.overestimate_pct))

    b = run_fig3b_requests()
    print("Fig 3b — commands 1/2 overlap for {:.1f} ms".format(
        b.overlap_ns / 1e6))
    print(format_series(b.watts, label="GPU W"))

    c = run_fig3c_lingering()
    print("\nFig 3c — after idle {:.2f} W vs after busy {:.2f} W "
          "({:+.0f}%)".format(c.mean_after_idle, c.mean_after_busy,
                              c.lingering_pct))


def run_fig6():
    from repro.experiments.fig6 import run_fig6_row

    for component in ("cpu", "dsp", "gpu", "wifi"):
        row = run_fig6_row(component)
        rows = [["alone", "{:.0f}".format(row.alone.energy_j * 1000), "--"]]
        for cell in row.psbox_cells:
            rows.append(["psbox " + cell.label,
                         "{:.0f}".format(cell.energy_j * 1000),
                         "{:+.1f}%".format(cell.delta_pct)])
        for cell in row.baseline_cells:
            rows.append(["existing " + cell.label,
                         "{:.0f}".format(cell.energy_j * 1000),
                         "{:+.1f}%".format(cell.delta_pct)])
        print(format_table(["scenario", "mJ", "delta"], rows,
                           title="Fig 6 — {} row".format(component)))
        print()


def run_fig7():
    from repro.experiments.fig7 import run_fig7_cpu, run_fig7_dsp

    cpu = run_fig7_cpu(use_psbox=True)
    print("Fig 7 CPU — {} balloons, {:.0f} ms forced idle".format(
        len(cpu.windows), cpu.forced_idle_ns / 1e6))
    dsp = run_fig7_dsp(use_psbox=True)
    print("Fig 7 DSP — {} balloons, foreign overlap in windows: "
          "{:.1f} ms".format(len(dsp.windows), dsp.foreign_overlap_ns / 1e6))


def run_fig8():
    from repro.experiments.fig8 import run_fig8 as _run

    for component in ("cpu", "dsp", "gpu", "wifi"):
        result = _run(component)
        rows = [[i.name + ("*" if i.sandboxed else ""),
                 "{:.1f}".format(i.before), "{:.1f}".format(i.after),
                 "{:+.1f}%".format(-i.loss_pct)]
                for i in result.instances]
        print(format_table(["instance", "before", "after", "change"], rows,
                           title="Fig 8 — {}".format(component)))
        print()


def run_fig9():
    from repro.experiments.fig9 import fidelity_power_span, run_fig9 as _run

    low, high = fidelity_power_span()
    result = _run()
    print("Fig 9 — fidelity span {:.0f}..{:.0f} mW = {:.1f}x".format(
        low * 1000, high * 1000, high / low))
    for budget, watts, level in zip(result.budgets_w, result.observed_w,
                                    result.fidelity):
        print("  budget {:.2f} W -> observed {:.3f} W at fidelity {}".format(
            budget, watts, level))


def run_sec62():
    from repro.experiments.sec62 import run_sec62_latency, run_sec62_throughput

    for row in run_sec62_latency():
        print("latency {:<16} {:8.2f} -> {:8.2f} ms".format(
            row.component, row.mean_without_ns / 1e6,
            row.mean_with_ns / 1e6))
    for row in run_sec62_throughput():
        print("throughput {:<6} total loss {:5.1f}%  (sandboxed "
              "{:5.1f}%)".format(row.component, row.total_loss_pct,
                                 row.sandboxed_loss_pct))


def run_sec63():
    from repro.experiments.sec63 import run_sec63_robustness

    result = run_sec63_robustness()
    print("Sec 6.3 — browser {:.1f}x slower, triangle {:+.1f}%".format(
        result.browser_slowdown, -result.triangle_loss_pct))


def run_sidechannel():
    from repro.experiments.sidechannel_exp import run_sidechannel as _run

    result = _run()
    print("Sec 2.5 — attack success {:.0%} ({:.1f}x random) without "
          "psbox, {:.0%} with".format(
              result.without_psbox.success_rate,
              result.without_psbox.advantage,
              result.with_psbox.success_rate))


def run_powercap():
    from repro.experiments.powercap_exp import run_powercap as _run

    result = _run()
    print(format_table(
        ["quantity", "value"],
        [["uncapped aggregate", "{:.2f} W".format(result.uncapped_w)],
         ["platform cap (70%)", "{:.2f} W".format(result.cap_w)],
         ["steady aggregate", "{:.2f} W".format(result.steady_w)],
         ["cap compliance", "{:+.1f}%".format(result.compliance_pct)],
         ["aggregate after B idles", "{:.2f} W".format(result.relaxed_w)],
         ["tenant A grant gain", "{:+.2f} W".format(result.tenant_a_gain_w)],
         ["throttle/relax actions", str(result.throttle_actions)]],
        title="Power capping — hierarchical budget enforcement",
    ))
    print(format_table(
        ["leaf", "grant contended", "grant after B idles"],
        [[leaf, "{:.2f} W".format(result.grants_contended[leaf]),
          "{:.2f} W".format(result.grants_relaxed[leaf])]
         for leaf in sorted(result.grants_contended)],
        title="Per-leaf grants (slack redistribution)",
    ))


def run_cluster(args=None):
    from repro.experiments.cluster_exp import (
        DEFAULT_BENCH_PATH,
        DEFAULT_NODES,
        run_cluster as _run,
        write_bench,
    )

    jobs = getattr(args, "jobs", 1) if args is not None else 1
    cache = _result_cache(args)
    nodes = getattr(args, "nodes", None) if args is not None else None
    bench = getattr(args, "bench", None) if args is not None else None
    result, runner = _run(
        nodes=nodes if nodes else DEFAULT_NODES,
        jobs=jobs, cache=cache, backend=_backend(args),
        obs_metrics=obs_runtime.is_active() and jobs > 1,
    )
    print(format_table(
        ["quantity", "value"],
        [["nodes", str(result.nodes)],
         ["instances placed", "{}/{}".format(result.placement["placed"],
                                             result.instances)],
         ["peak concurrent users", "{:,}".format(result.peak_users)],
         ["uncapped cluster peak", "{:.2f} W".format(result.uncapped_peak_w)],
         ["datacenter budget (70%)", "{:.2f} W".format(result.budget_w)],
         ["spill rate", "{:.1%}".format(result.placement["spill_rate"])],
         ["placement balance CV", "{:.3f}".format(
             result.placement["balance_cv"])]],
        title="Cluster — {} nodes under one budget".format(result.nodes),
    ))
    rows = []
    for name in sorted(result.runs):
        m = result.runs[name]
        rows.append([name,
                     "{:+.2f}%".format(m["compliance_pct"]),
                     "{:.2f}%".format(m["mean_abs_error_pct"]),
                     "{:+.2f}%".format(m["max_overshoot_pct"]),
                     "{:.3f} W".format(m["redistributed_slack_w"]),
                     str(m["throttle_actions"])])
    print(format_table(
        ["allocator", "compliance", "abs err", "max over", "slack moved",
         "actions"],
        rows,
        title="Global allocators, head to head",
    ))
    path = write_bench(result, bench or DEFAULT_BENCH_PATH)
    print("bench -> {}".format(path))
    _print_par_stats(runner, jobs, cache)


def _result_cache(args):
    if args is None or not getattr(args, "cache", None):
        return None
    from repro.par import ResultCache

    return ResultCache(args.cache,
                       remote=getattr(args, "cache_remote", None))


def _backend(args):
    return getattr(args, "backend", "auto") if args is not None else "auto"


def _print_par_stats(runner, jobs, cache):
    """Runner stats go to stderr: the stdout report must stay byte-identical
    between serial and parallel runs (the differential test's contract).
    The merged worker metrics exist only when jobs > 1 (in-process cells
    register with the parent's runtime instead), so they go to stderr for
    the same reason."""
    if jobs > 1 or cache is not None:
        print(runner.stats.summary(), file=sys.stderr)
    if runner.obs_snapshot is not None:
        from repro.obs import format_metrics_table

        print(format_metrics_table(runner.obs_snapshot), file=sys.stderr)


def _print_campaign_table(campaign):
    rows = [
        [o.name, o.workload, str(o.injections), str(o.violations),
         o.outcome + ("" if o.matches else " (MISMATCH!)")]
        for o in campaign.outcomes
    ]
    print(format_table(
        ["scenario", "workload", "injections", "violations", "outcome"],
        rows,
        title="Fault campaign — seed {}".format(campaign.seed),
    ))
    for o in campaign.outcomes:
        if o.first_violation:
            print("  {}: first violation {}".format(o.name, o.first_violation))
    print("campaign {}: {}/{} scenarios matched expectations".format(
        "ok" if campaign.ok else "FAILED",
        len(campaign.outcomes) - len(campaign.mismatches),
        len(campaign.outcomes)))


def run_faults(args=None):
    from repro.experiments.faults_exp import (
        campaign_summary_lines,
        run_faults_parallel,
        soak_seeds,
    )

    jobs = getattr(args, "jobs", 1) if args is not None else 1
    cache = _result_cache(args)
    if args is not None and getattr(args, "seeds", None) is not None:
        seeds = soak_seeds(args.seeds, args.entropy)
    else:
        seeds = [0]
    campaigns, runner = run_faults_parallel(
        seeds, jobs=jobs, cache=cache, backend=_backend(args),
        obs_metrics=obs_runtime.is_active() and jobs > 1,
    )
    if len(campaigns) == 1:
        _print_campaign_table(campaigns[0])
    else:
        for campaign in campaigns:
            for line in campaign_summary_lines(campaign):
                print(line)
    _print_par_stats(runner, jobs, cache)


def run_sweep(args=None):
    from repro.experiments.sweep import run_sweep as _run

    jobs = getattr(args, "jobs", 1) if args is not None else 1
    cache = _result_cache(args)
    only = getattr(args, "only", None) if args is not None else None
    try:
        payloads, runner = _run(
            only.split(",") if only else None, jobs=jobs, cache=cache,
            backend=_backend(args),
            obs_metrics=obs_runtime.is_active() and jobs > 1,
        )
    except ValueError as exc:
        # unknown --only cells: a clean CLI error, not a CellError from
        # deep inside a worker
        raise SystemExit("error: {}".format(exc))
    for payload in payloads:
        print("== {} ==".format(payload["cell"]))
        print(payload["text"], end="")
    _print_par_stats(runner, jobs, cache)


EXPERIMENTS = {
    "fig3": run_fig3,
    "faults": run_faults,
    "powercap": run_powercap,
    "cluster": run_cluster,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "sec62": run_sec62,
    "sec63": run_sec63,
    "sidechannel": run_sidechannel,
    "sweep": run_sweep,
}

#: subcommands whose driver consumes the parallel/soak CLI flags
NEEDS_ARGS = {"faults", "sweep", "cluster"}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*",
                        help="experiments to run, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Chrome/Perfetto trace-event JSON file "
                             "covering every simulator the run boots")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write a metrics snapshot (JSON) and print the "
                             "merged table")
    parser.add_argument("--profile", nargs="?", const=12, type=int,
                        metavar="N",
                        help="profile the event loop on the host clock and "
                             "print the top N handler callsites (default 12)")
    parser.add_argument("--telemetry", nargs="?", const="telemetry",
                        metavar="DIR",
                        help="arm the full telemetry stack (timeline series "
                             "+ alert engine + tracing) and write the export "
                             "bundle — OpenMetrics text, JSONL series, "
                             "merged Chrome trace, alert summary — under "
                             "DIR (default ./telemetry)")
    parser.add_argument("--report", action="store_true",
                        help="print the SLO/alert report after the run "
                             "(implies --telemetry)")
    parser.add_argument("--flight", nargs="?", const="flight",
                        metavar="DIR",
                        help="arm the flight recorder (implies --telemetry): "
                             "a bounded black box that dumps a self-contained "
                             "JSON snapshot under DIR (default ./flight) "
                             "whenever an alert fires or an invariant "
                             "violation is recorded; feed the dumps to the "
                             "'explain' subcommand")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan independent cells across N processes "
                             "(faults, sweep); output is byte-identical to "
                             "a serial run")
    parser.add_argument("--cache", metavar="DIR",
                        help="content-addressed result cache for parallel "
                             "cells (faults, sweep); invalidated by any "
                             "repro source change")
    parser.add_argument("--cache-remote", metavar="DIR|URL",
                        help="read-through remote cache tier: a directory "
                             "or http(s)/file URL serving the same layout; "
                             "remote hits are written back into --cache")
    parser.add_argument("--backend",
                        choices=["auto", "inline", "thread", "spawn",
                                 "socket"],
                        default="auto",
                        help="execution backend for parallel cells "
                             "(default auto: cost-model selection between "
                             "inline and a spawn pool)")
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="faults soak mode: run N seeds drawn from "
                             "--entropy")
    parser.add_argument("--entropy", type=int, default=0,
                        help="seed-sequence entropy for --seeds")
    parser.add_argument("--only", metavar="CELLS",
                        help="sweep: comma-separated cell names")
    parser.add_argument("--nodes", type=int, default=None, metavar="N",
                        help="cluster: topology size (default 8)")
    parser.add_argument("--bench", metavar="PATH",
                        help="cluster: benchmark JSON path "
                             "(default BENCH_cluster.json)")
    args = parser.parse_args(argv)
    try:
        args.jobs = effective_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))

    if args.list or not args.names:
        print("available experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    if args.names[0] == "explain":
        if len(args.names) < 2:
            parser.error("explain needs a telemetry bundle or flight dump "
                         "path (e.g. 'explain telemetry')")
        return run_explain(args.names[1:])
    if args.names == ["all"]:
        # "all" already covers every cell the sweep would run
        names = sorted(name for name in EXPERIMENTS if name != "sweep")
    else:
        names = args.names
    for name in names:
        if name not in EXPERIMENTS:
            parser.error("unknown experiment {!r} (try --list)".format(name))

    if (args.report or args.flight is not None) and args.telemetry is None:
        args.telemetry = "telemetry"
    observing = bool(args.trace or args.metrics or args.profile is not None
                     or args.telemetry is not None)
    if (args.jobs > 1
            and (args.trace or args.profile is not None
                 or args.telemetry is not None)
            and any(name in NEEDS_ARGS for name in names)):
        # workers arm metrics only — span/sample/timeline streams are too
        # hot to ship across the process boundary, so parallel cells are
        # invisible to --trace/--profile/--telemetry
        print("warning: --trace/--profile/--telemetry cover only the parent "
              "process; cells run with --jobs {} are not traced, profiled, "
              "or sampled (use --jobs 1, or --metrics for aggregated "
              "counters)".format(args.jobs), file=sys.stderr)
    if observing:
        obs_runtime.configure(
            tracing=args.trace is not None or args.telemetry is not None,
            metrics=True,
            profiling=args.profile is not None,
            telemetry=args.telemetry is not None,
            flight=args.flight is not None,
            flight_dir=args.flight,
        )
    try:
        for name in names:
            obs_runtime.set_label_prefix(name)
            print("#" * 72)
            print("# {}".format(name))
            print("#" * 72)
            if name in NEEDS_ARGS:
                EXPERIMENTS[name](args)
            else:
                EXPERIMENTS[name]()
            print()
        if observing:
            _export_observability(args)
    finally:
        obs_runtime.reset()
    return 0


def _export_observability(args):
    from repro.obs import (
        export_chrome_trace,
        export_metrics,
        format_metrics_table,
        metrics_snapshot,
    )

    sessions = obs_runtime.sessions()
    if args.trace:
        count = export_chrome_trace(sessions, args.trace)
        print("trace: {} events from {} sessions -> {}".format(
            count, len(sessions), args.trace))
    if args.metrics:
        export_metrics(sessions, args.metrics)
        print("metrics snapshot -> {}".format(args.metrics))
        print(format_metrics_table(metrics_snapshot(sessions)))
    if args.telemetry is not None:
        _export_telemetry(args, sessions)
    profiler = obs_runtime.profiler()
    if args.profile is not None and profiler is not None:
        print(profiler.format_table(args.profile))


def _export_telemetry(args, sessions):
    """Write the telemetry bundle and (optionally) print the alert report.

    The bundle is one directory holding every export surface: OpenMetrics
    text for scrape-shaped consumers, the JSONL series dump for offline
    analysis, the merged Chrome trace (each session its own pid track,
    alert instants included), and the structured alert summary.
    """
    import json
    import os

    from repro.obs import (
        export_chrome_trace,
        export_events_jsonl,
        export_openmetrics,
        export_timeline_jsonl,
    )

    engine = obs_runtime.finalize_telemetry()
    out = args.telemetry
    os.makedirs(out, exist_ok=True)
    families = export_openmetrics(sessions, os.path.join(out, "metrics.om"))
    series = export_timeline_jsonl(sessions, os.path.join(out,
                                                          "series.jsonl"))
    events = export_chrome_trace(sessions, os.path.join(out, "trace.json"))
    export_events_jsonl(sessions, os.path.join(out, "events.jsonl"))
    summary = engine.summary() if engine is not None else {
        "ok": True, "rules": 0, "alerts": [], "counts": {}}
    with open(os.path.join(out, "report.json"), "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("telemetry: {} metric families, {} series, {} trace events "
          "-> {}/".format(families, series, events, out))
    recorder = obs_runtime.flight_recorder()
    if recorder is not None:
        dumps = recorder.flush()
        print("flight: {} dump(s){} -> {}/".format(
            dumps,
            " (+{} suppressed)".format(recorder.suppressed)
            if recorder.suppressed else "",
            recorder.out_dir or "(memory)"))
    if args.report and engine is not None:
        print(engine.format_report())


def run_explain(paths):
    """The explain subcommand: evidence in, incident reports out."""
    import os

    from repro.obs import explain as explain_mod

    for path in paths:
        evidence = explain_mod.load(path)
        report = explain_mod.explain(evidence)
        out_dir = path if os.path.isdir(path) else (
            os.path.dirname(path) or ".")
        json_path, _text, trace_path = explain_mod.write_reports(
            report, out_dir)
        print(explain_mod.format_incidents(report))
        print("explain: {} incident(s) -> {} (+ overlay {})".format(
            len(report["incidents"]), json_path, trace_path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
