"""Figure 3: the three causes of power entanglement, demonstrated.

(a) spatial concurrency — total CPU power of two co-running instances vs
    2x the power of one instance running alone;
(b) blurry request boundary — three GPU commands, command 2 overlapping
    command 1 in flight;
(c) lingering power state — the same app's power when it starts after an
    idle period vs right after a busy workload.
"""

from dataclasses import dataclass

import numpy as np

from repro.apps.base import App
from repro.experiments.common import boot
from repro.kernel.actions import Compute, Sleep
from repro.sim.clock import MSEC, SEC


def _spinner(kernel, name, burst=5.0e6, pause_us=100, repeats=400):
    """A CPU-bound process: near-continuous compute bursts."""
    app = App(kernel, name)

    def behavior():
        for _ in range(repeats):
            yield Compute(burst)
            yield Sleep(pause_us * 1000)

    app.spawn(behavior(), name=name)
    return app


@dataclass
class Fig3aResult:
    times: np.ndarray
    watts_two_instances: np.ndarray
    watts_one_doubled: np.ndarray
    mean_two: float
    mean_one_doubled: float

    @property
    def overestimate_pct(self):
        """How much doubling one instance overestimates two instances."""
        return 100.0 * (self.mean_one_doubled - self.mean_two) / self.mean_two


def run_fig3a_spatial(seed=11, duration=1 * SEC, dt=MSEC):
    """One instance per core vs one instance alone, doubled."""
    warmup = 200 * MSEC   # let the governor reach steady state

    platform1, kernel1 = boot(seed=seed)
    _spinner(kernel1, "proc0")
    platform1.sim.run(until=warmup + duration)
    _t, one = platform1.meter.sample("cpu", warmup, warmup + duration, dt)

    platform2, kernel2 = boot(seed=seed)
    _spinner(kernel2, "proc0")
    _spinner(kernel2, "proc1")
    platform2.sim.run(until=warmup + duration)
    times, two = platform2.meter.sample("cpu", warmup, warmup + duration, dt)

    return Fig3aResult(
        times=times,
        watts_two_instances=two,
        watts_one_doubled=2.0 * one,
        mean_two=float(two.mean()),
        mean_one_doubled=float(2.0 * one.mean()),
    )


@dataclass
class Fig3bResult:
    commands: list                      # (seq, kind, dispatch_t, notify_t)
    times: np.ndarray
    watts: np.ndarray
    overlap_ns: int                     # cmd 1 / cmd 2 in-flight overlap


def run_fig3b_requests(seed=12, dt=100_000):
    """Three GPU commands; command 2 overlaps command 1 in flight."""
    platform, kernel = boot(seed=seed)
    app = App(kernel, "cmds")
    notify = {}

    def on_done(command):
        notify[command.seq] = kernel.now

    sched = kernel.gpu_sched
    c1 = sched.submit(app, "long", cycles=4.0e6, power_w=0.9,
                      on_complete=on_done)
    platform.sim.run(until=4 * MSEC)
    c2 = sched.submit(app, "short", cycles=1.5e6, power_w=0.55,
                      on_complete=on_done)
    # Command 3 goes in only after 1 and 2 are done: no overlap.
    platform.sim.run(until=60 * MSEC)
    c3 = sched.submit(app, "short", cycles=1.5e6, power_w=0.55,
                      on_complete=on_done)
    platform.sim.run(until=120 * MSEC)

    commands = [
        (c.seq, c.kind, c.dispatch_t, notify.get(c.seq))
        for c in (c1, c2, c3)
    ]
    times, watts = platform.meter.sample("gpu", 0, 120 * MSEC, dt)
    overlap = max(0, min(c1.complete_t, c2.complete_t) - c2.dispatch_t)
    return Fig3bResult(commands=commands, times=times, watts=watts,
                       overlap_ns=int(overlap))


@dataclass
class Fig3cResult:
    times: np.ndarray
    watts_after_idle: np.ndarray
    watts_after_busy: np.ndarray
    mean_after_idle: float
    mean_after_busy: float

    @property
    def lingering_pct(self):
        return 100.0 * (self.mean_after_busy - self.mean_after_idle) \
            / self.mean_after_idle


def run_fig3c_lingering(seed=13, dt=MSEC):
    """The same app after an idle period vs right after a busy workload.

    The measurement window is short (~100 ms) because that is where the
    lingering DVFS state lives: after it, the governor has converged either
    way.
    """
    measure = 100 * MSEC

    # After idle: the app starts on a cold (low-frequency) CPU.
    platform1, kernel1 = boot(seed=seed)
    platform1.sim.run(until=500 * MSEC)
    start1 = platform1.sim.now
    _spinner(kernel1, "app", repeats=60)
    platform1.sim.run(until=start1 + measure)
    times, after_idle = platform1.meter.sample(
        "cpu", start1, start1 + measure, dt)

    # After busy: a heavy workload just finished; frequency is still high.
    platform2, kernel2 = boot(seed=seed)
    warm = _spinner(kernel2, "warm", repeats=95)
    while not warm.finished:
        platform2.sim.run(until=platform2.sim.now + 10 * MSEC)
    start2 = platform2.sim.now
    _spinner(kernel2, "app", repeats=60)
    platform2.sim.run(until=start2 + measure)
    _t, after_busy = platform2.meter.sample(
        "cpu", start2, start2 + measure, dt)

    return Fig3cResult(
        times=times,
        watts_after_idle=after_idle,
        watts_after_busy=after_busy,
        mean_after_idle=float(after_idle.mean()),
        mean_after_busy=float(after_busy.mean()),
    )
