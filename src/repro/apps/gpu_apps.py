"""GPU benchmark apps: browser (WebKit), magic (PowerVR SDK), cube (Qt),
triangle (synthetic offscreen stressor).

Browser page loads are bursty mixes of layout/raster/composite commands;
magic and cube are steady 60 fps render loops of different intensity;
triangle saturates the GPU with back-to-back heavy draws.  Progress is
counted in GPU commands so Figure 8(c)'s Commands/s axis can be rebuilt.
"""

from repro.apps.base import App
from repro.kernel.actions import Sleep, SubmitAccel, WaitAll, WaitOutstanding
from repro.sim.clock import from_msec, from_usec

FRAME_NS = from_usec(16667)   # 60 fps


def gpu_browser(kernel, name="browser", bursts=None, weight=1.0):
    """A browser opening a page: bursts of mixed GPU commands.

    ``bursts`` is a list of (gap_ms, [(kind, cycles, power_w), ...]); the
    default approximates a Google-homepage-like load of ~0.2 s.
    """
    app = App(kernel, name, weight=weight)
    if bursts is None:
        raster = ("raster", 4.0e6, 0.80)
        composite = ("composite", 2.4e6, 0.60)
        layout = ("layout", 1.4e6, 0.48)
        bursts = [
            (2, [layout, raster, composite]),
            (15, [raster, raster, composite]),
            (20, [layout, raster, raster, composite]),
            (22, [raster, composite, composite]),
            (25, [raster, raster, composite]),
            (30, [composite, composite]),
        ]

    def behavior():
        for gap_ms, commands in bursts:
            yield Sleep(from_msec(gap_ms))
            for kind, cycles, power_w in commands:
                yield SubmitAccel("gpu", kind, cycles, power_w, wait=False)
            yield WaitAll()
            app.count("bursts", 1)

    app.spawn(behavior(), name=name + ".render")
    return app


def _render_loop(kernel, app, kind, cycles, power_w, frames):
    """A double-buffered render loop: up to two frames in flight."""
    rng = kernel.sim.rng.stream("app.{}.{}".format(app.name, app.id))

    def behavior():
        for _ in range(frames):
            frame_cycles = max(float(rng.normal(cycles, cycles * 0.05)),
                               cycles * 0.3)
            yield SubmitAccel("gpu", kind, frame_cycles, power_w, wait=False)
            yield WaitOutstanding(2)
            app.count("frames", 1)
            yield Sleep(from_usec(int(rng.uniform(200, 500))))

    return behavior()


def magic(kernel, name="magic", frames=60, weight=1.0):
    """The PowerVR "magic lantern" demo: heavy 60 fps scene."""
    app = App(kernel, name, weight=weight)
    app.spawn(
        _render_loop(kernel, app, "magic_frame", cycles=5.5e6, power_w=0.95,
                     frames=frames),
        name=name + ".render",
    )
    return app


def cube(kernel, name="cube", frames=120, weight=1.0):
    """The Qt rotating-cube demo: light 60 fps scene."""
    app = App(kernel, name, weight=weight)
    app.spawn(
        _render_loop(kernel, app, "cube_frame", cycles=1.6e6, power_w=0.55,
                     frames=frames),
        name=name + ".render",
    )
    return app


def triangle(kernel, name="triangle", draws=4000, cycles=20.0e6, weight=1.0):
    """Synthetic stressor: large offscreen triangle batches, back to back.

    Batches are deliberately long-running (tens of ms): draining them is
    what makes the §6.3 robustness test "extremely high contention".
    """
    app = App(kernel, name, weight=weight)
    rng = kernel.sim.rng.stream("app.{}.{}".format(name, app.id))

    def behavior():
        # One batch in flight at a time: the synthetic stressor issues a
        # batch and spins preparing the next one, leaving a pipeline slot
        # free — so without psbox a co-running app's commands can overlap
        # into it, while a psbox must drain the long batch first.
        for _ in range(draws):
            batch = max(float(rng.normal(cycles, cycles * 0.06)), cycles * 0.25)
            yield SubmitAccel("gpu", "triangles", batch, 1.10, wait=True)
            app.count("draws", 1)

    app.spawn(behavior(), name=name + ".draw")
    return app
