"""Synthetic "Alexa top-10" websites for the side-channel study (§2.5).

Each website is a distinct, reproducible GPU workload signature — a
sequence of (gap, command mix) bursts.  Different pages produce different
GPU power traces ("unique power signatures"), which is all the paper's
attack needs.  Small per-visit jitter models run-to-run variation.
"""

import numpy as np

from repro.apps.base import App
from repro.kernel.actions import Sleep, SubmitAccel, WaitAll
from repro.sim.clock import from_msec

_SITE_NAMES = (
    "google", "youtube", "facebook", "baidu", "wikipedia",
    "reddit", "yahoo", "amazon", "twitter", "instagram",
)


def _signature(site_index):
    """Deterministic burst sequence for one website."""
    rng = np.random.default_rng(1000 + site_index)
    n_bursts = int(rng.integers(6, 13))
    bursts = []
    for _ in range(n_bursts):
        gap_ms = float(rng.uniform(8, 90))
        n_cmds = int(rng.integers(1, 6))
        commands = []
        for _ in range(n_cmds):
            cycles = float(rng.uniform(0.4e6, 4.5e6))
            power = float(rng.uniform(0.30, 1.10))
            commands.append(("page", cycles, power))
        bursts.append((gap_ms, commands))
    return bursts


WEBSITES = {name: _signature(i) for i, name in enumerate(_SITE_NAMES)}


def browse_website(kernel, site, name=None, jitter=0.04, weight=1.0):
    """A browser (victim) visiting ``site``: its GPU workload signature."""
    if site not in WEBSITES:
        raise KeyError("unknown website {!r}".format(site))
    app = App(kernel, name or "browser[{}]".format(site), weight=weight)
    rng = kernel.sim.rng.stream("victim.{}.{}".format(site, app.id))

    def behavior():
        for gap_ms, commands in WEBSITES[site]:
            gap = gap_ms * (1.0 + float(rng.normal(0.0, jitter)))
            yield Sleep(from_msec(max(gap, 1.0)))
            for kind, cycles, power in commands:
                jittered = cycles * (1.0 + float(rng.normal(0.0, jitter)))
                yield SubmitAccel("gpu", kind, max(jittered, 1e5), power,
                                  wait=False)
            yield WaitAll()
        app.count("pages", 1)

    app.spawn(behavior(), name=app.name + ".render")
    return app
