"""DSP benchmark apps: sgemm, dgemm, monte (TI am57 SDK kernels).

Each offloads OpenCL-style kernels to the C66x-like DSP through the
command-queue scheduler.  Kernel durations are long (tens of ms), which is
what makes DSP temporal-balloon draining cost ~100 ms in the paper.
Progress is counted in GFLOP so Figure 8(b)'s GFLOPS axis can be rebuilt.
"""

from repro.apps.base import App
from repro.kernel.actions import Sleep, SubmitAccel, WaitOutstanding
from repro.sim.clock import from_usec


def _kernel_loop(kernel, app, kind, cycles_mean, power_w, gflop_per_kernel,
                 iterations, gap_us):
    """An async OpenCL-style enqueue loop: up to two kernels in flight."""
    rng = kernel.sim.rng.stream("app.{}.{}".format(app.name, app.id))

    def behavior():
        for _ in range(iterations):
            cycles = max(float(rng.normal(cycles_mean, cycles_mean * 0.06)),
                         cycles_mean * 0.3)
            yield SubmitAccel("dsp", kind, cycles, power_w, wait=False)
            yield WaitOutstanding(2)
            app.count("gflop", gflop_per_kernel)
            yield Sleep(from_usec(int(rng.uniform(gap_us * 0.6, gap_us * 1.4))))

    return behavior()


def sgemm(kernel, name="sgemm", iterations=40, weight=1.0):
    """Single-precision matrix multiply: ~75 ms kernels at 0.55 W."""
    app = App(kernel, name, weight=weight)
    app.spawn(
        _kernel_loop(kernel, app, "sgemm", cycles_mean=56e6, power_w=0.55,
                     gflop_per_kernel=0.40, iterations=iterations, gap_us=600),
        name=name + ".main",
    )
    return app


def dgemm(kernel, name="dgemm", iterations=24, weight=1.0):
    """Double-precision matrix multiply: ~150 ms kernels at 0.85 W."""
    app = App(kernel, name, weight=weight)
    app.spawn(
        _kernel_loop(kernel, app, "dgemm", cycles_mean=112e6, power_w=0.85,
                     gflop_per_kernel=0.28, iterations=iterations, gap_us=800),
        name=name + ".main",
    )
    return app


def monte(kernel, name="monte", iterations=120, weight=1.0):
    """Monte Carlo simulation: many short ~20 ms kernels at 0.40 W."""
    app = App(kernel, name, weight=weight)
    app.spawn(
        _kernel_loop(kernel, app, "monte", cycles_mean=15e6, power_w=0.40,
                     gflop_per_kernel=0.05, iterations=iterations, gap_us=400),
        name=name + ".main",
    )
    return app
