"""Benchmark apps (Table 5 of the paper) as simulated workloads.

Each factory spawns the app's tasks on a kernel and returns the
:class:`App` handle.  CPU apps: bodytrack, calib3d, dedup.  GPU apps:
browser, magic, cube, triangle.  DSP apps: sgemm, dgemm, monte.  WiFi apps:
browser, scp, wget.  Plus the website signatures for the side-channel study
and the VR use case of §6.4.
"""

from repro.apps.base import App
from repro.apps.cpu_apps import bodytrack, calib3d, dedup
from repro.apps.dsp_apps import dgemm, monte, sgemm
from repro.apps.gpu_apps import cube, gpu_browser, magic, triangle
from repro.apps.traffic import inbound_stream
from repro.apps.vr import VrApp
from repro.apps.websites import WEBSITES, browse_website
from repro.apps.wifi_apps import scp, wget, wifi_browser

#: the paper's Table 5, as code: component -> {benchmark name -> factory}.
TABLE5 = {
    "cpu": {"bodytrack": bodytrack, "calib3d": calib3d, "dedup": dedup},
    "gpu": {"browser": gpu_browser, "magic": magic, "cube": cube,
            "triangle": triangle},
    "dsp": {"sgemm": sgemm, "dgemm": dgemm, "monte": monte},
    "wifi": {"browser": wifi_browser, "scp": scp, "wget": wget},
}

__all__ = [
    "TABLE5",
    "inbound_stream",
    "App",
    "WEBSITES",
    "VrApp",
    "bodytrack",
    "browse_website",
    "calib3d",
    "cube",
    "dedup",
    "dgemm",
    "gpu_browser",
    "magic",
    "monte",
    "scp",
    "sgemm",
    "triangle",
    "wget",
    "wifi_browser",
]
