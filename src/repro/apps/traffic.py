"""Inbound traffic sources (the network side of reception).

Reception is initiated by the world, not by apps — a push notification, a
streaming chunk, a peer's message.  These helpers model that: a sim
process delivers packets *to* the NIC on a schedule the OS does not
control, which is precisely why the paper's WiFi psbox cannot fully
insulate reception (§4.2).
"""

from repro.sim.clock import from_msec


def inbound_stream(platform, app_id, size_bytes=24_000, period_ms=30,
                   jitter=0.3, count=None, nic=None, rng_name=None):
    """Start delivering inbound packets for ``app_id``; returns the process.

    ``period_ms`` paces deliveries with multiplicative ``jitter``;
    ``count=None`` streams forever.  ``nic`` defaults to the WiFi NIC.
    """
    device = nic if nic is not None else platform.nic
    if device is None:
        raise ValueError("platform has no NIC for inbound traffic")
    rng = platform.sim.rng.stream(
        rng_name or "inbound.{}".format(app_id)
    )

    def deliveries():
        delivered = 0
        while count is None or delivered < count:
            device.receive(app_id, size_bytes)
            delivered += 1
            factor = 1.0 + float(rng.uniform(-jitter, jitter))
            yield max(from_msec(period_ms * factor), 1)

    return platform.sim.spawn(deliveries(),
                              name="inbound.{}".format(app_id))
