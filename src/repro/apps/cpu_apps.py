"""CPU benchmark apps: calib3d (OpenCV), bodytrack (PARSEC), dedup (PARSEC).

Each is a workload generator with the structure of the original: calib3d
iterates medium compute bursts (camera calibration solves) over input
frames; bodytrack runs two worker threads of heavier vision bursts; dedup
alternates compute (chunking + compression) with I/O-ish waits.  Progress
is counted in KB of input processed, matching Figure 8(a)'s KB/s axis.
"""

from repro.apps.base import App
from repro.kernel.actions import Compute, Sleep
from repro.sim.clock import from_usec


def _burst_cycles(rng, mean, spread):
    """A positive burst length with mild run-to-run variation."""
    return max(float(rng.normal(mean, spread)), mean * 0.2)


def calib3d(kernel, name="calib3d", iterations=80, kb_per_iteration=3.0,
            weight=1.0):
    """Camera calibration / 3D reconstruction: CPU-bound iterations."""
    app = App(kernel, name, weight=weight)
    rng = kernel.sim.rng.stream("app.{}.{}".format(name, app.id))

    def behavior():
        for _ in range(iterations):
            yield Compute(_burst_cycles(rng, 6.0e6, 0.5e6))
            app.count("kb", kb_per_iteration)
            yield Sleep(from_usec(int(rng.uniform(150, 350))))

    app.spawn(behavior(), name=name + ".main")
    return app


def bodytrack(kernel, name="bodytrack", iterations=120, n_workers=2,
              weight=1.0):
    """Body tracking: two worker threads of heavier vision bursts."""
    app = App(kernel, name, weight=weight)

    def worker(worker_id):
        rng = kernel.sim.rng.stream(
            "app.{}.{}.w{}".format(name, app.id, worker_id)
        )

        def behavior():
            for _ in range(iterations):
                yield Compute(_burst_cycles(rng, 4.5e6, 0.6e6))
                app.count("kb", 2.0)
                yield Sleep(from_usec(int(rng.uniform(100, 300))))

        return behavior

    for worker_id in range(n_workers):
        app.spawn(worker(worker_id)(), name="{}.w{}".format(name, worker_id))
    return app


def dedup(kernel, name="dedup", iterations=150, weight=1.0):
    """Stream deduplication: lighter bursts interleaved with I/O waits."""
    app = App(kernel, name, weight=weight)
    rng = kernel.sim.rng.stream("app.{}.{}".format(name, app.id))

    def behavior():
        for _ in range(iterations):
            yield Compute(_burst_cycles(rng, 2.0e6, 0.3e6))
            app.count("kb", 4.0)
            yield Sleep(from_usec(int(rng.uniform(800, 1600))))

    app.spawn(behavior(), name=name + ".main")
    return app
