"""The end-to-end VR use case (§6.4, Figure 9).

Two continuously running CPU tasks, as in the TI SDK demo the paper builds
on: *gesture* processes camera frames (its load varies with the number of
hand contours in view) and *rendering* animates water waves (Phillips
spectrum + 2D IFFT + height-map refresh) at a fidelity level.

They are separate principals: rendering is the power-aware one.  Inside its
psbox it periodically samples its own power — insulated from gesture's
input-dependent load — and trades fidelity (framerate x resolution) for
power against a budget.  Fidelity levels span roughly 90 mW to 800 mW of
observed CPU power, the paper's 8.9x range.
"""

from repro.apps.base import App
from repro.kernel.actions import Compute, Sleep
from repro.sim.clock import from_msec

#: fidelity level -> (frame period ns, cycles per frame)
FIDELITY_LEVELS = (
    (from_msec(40), 1.5e6),     # level 0: 25 fps, low resolution
    (from_msec(33), 2.2e6),     # level 1: 30 fps
    (from_msec(28), 3.0e6),     # level 2: 36 fps
    (from_msec(25), 4.0e6),     # level 3: 40 fps
    (from_msec(20), 5.5e6),     # level 4: 50 fps
    (from_msec(16), 7.0e6),     # level 5: 60 fps, full resolution
)


class VrApp:
    """Gesture + power-aware rendering, adapting fidelity to a power budget."""

    def __init__(self, kernel, name="vr", budget_w=None, fidelity=5,
                 sample_period=from_msec(100), duration=None,
                 use_psbox=True):
        self.kernel = kernel
        self.gesture_app = App(kernel, name + ".gesture")
        self.render_app = App(kernel, name + ".rendering")
        self.budget_w = budget_w
        self.fidelity = fidelity
        self.sample_period = sample_period
        self.duration = duration
        self.use_psbox = use_psbox
        self.psbox = (
            self.render_app.create_psbox(("cpu",)) if use_psbox else None
        )
        self.fidelity_history = []   # (t, level) on every change
        self.power_history = []      # (t, watts observed by rendering)
        self._stopped = False
        self.gesture_app.spawn(self._gesture(), name=name + ".gesture")
        self.render_app.spawn(self._rendering(), name=name + ".rendering")
        if use_psbox:
            self.psbox.enter()

    def stop(self):
        self._stopped = True
        if self.psbox is not None and self.psbox.entered:
            self.psbox.leave()

    # -- the two SDK tasks ------------------------------------------------------

    def _gesture(self):
        """Contour detection: load follows the (varying) input scene."""
        rng = self.kernel.sim.rng.stream(
            "vr.gesture.{}".format(self.gesture_app.id)
        )
        contours = 8.0
        start = self.kernel.now
        while not self._stopped:
            if self.duration and self.kernel.now - start > self.duration:
                return
            contours = min(max(contours + rng.normal(0.0, 2.0), 1.0), 24.0)
            yield Compute(0.35e6 + 0.12e6 * contours)
            self.gesture_app.count("gesture_frames", 1)
            yield Sleep(from_msec(33))   # 30 fps camera

    def _rendering(self):
        """Wave animation at the current fidelity, adapting on psbox power."""
        start = self.kernel.now
        last_sample = start
        while not self._stopped:
            if self.duration and self.kernel.now - start > self.duration:
                self.stop()
                return
            period, cycles = FIDELITY_LEVELS[self.fidelity]
            yield Compute(cycles)
            self.render_app.count("render_frames", 1)
            now = self.kernel.now
            if (
                self.use_psbox
                and self.budget_w is not None
                and now - last_sample >= self.sample_period
            ):
                self._adapt(last_sample, now)
                last_sample = now
            elapsed = self.kernel.now - start
            slack = period - (elapsed % period)
            yield Sleep(int(slack))

    def _adapt(self, t0, t1):
        """The power-aware decision: compare observed power to the budget."""
        watts = self.psbox.energy(t0, t1) / ((t1 - t0) / 1e9)
        self.power_history.append((t1, watts))
        old = self.fidelity
        if watts > self.budget_w * 1.08 and self.fidelity > 0:
            self.fidelity -= 1
        elif watts < self.budget_w * 0.80 and \
                self.fidelity < len(FIDELITY_LEVELS) - 1:
            self.fidelity += 1
        if self.fidelity != old:
            self.fidelity_history.append((t1, self.fidelity))
