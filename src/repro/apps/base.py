"""The App abstraction: one or a group of user processes (paper's terms)."""

from repro.sim.trace import EventTrace


class App:
    """One application: identity, tasks, metrics, and optional psboxes.

    Ids are kernel-scoped so that runs with the same seed are bitwise
    reproducible regardless of what else ran in the process.
    """

    def __init__(self, kernel, name, weight=1.0):
        self.kernel = kernel
        self.id = kernel.next_app_id()
        self.name = name
        self.weight = float(weight)
        self.tasks = []
        self.psboxes = []
        self.counters = {}
        self.events = EventTrace(name + ".metrics")
        self.started_at = kernel.now
        kernel.register_app(self)

    # -- tasks ------------------------------------------------------------------

    def spawn(self, behavior, name="", weight=1.0):
        """Start one task of this app running ``behavior`` (a generator)."""
        return self.kernel.spawn(self, behavior, name=name, weight=weight)

    def task_finished(self, task):
        self.events.log(self.kernel.now, "task_done", task=task.name)

    @property
    def finished(self):
        """True when every spawned task has run to completion."""
        return bool(self.tasks) and all(not t.alive for t in self.tasks)

    @property
    def finished_at(self):
        """Completion time of the last task (None while any is alive)."""
        if not self.finished:
            return None
        return max(t.finished_at for t in self.tasks)

    # -- metrics ------------------------------------------------------------------

    def count(self, metric, n=1):
        """Record ``n`` units of app-defined progress (items, frames, KB...)."""
        self.counters[metric] = self.counters.get(metric, 0) + n
        self.events.log(self.kernel.now, "count", metric=metric, n=n)

    def note_command_complete(self, device, command):
        self.count(device + "_commands", 1)
        self.count(device + "_cycles", command.cycles)

    def note_packet_complete(self, packet):
        self.count("tx_bytes", packet.size_bytes)

    def rate(self, metric, t0, t1):
        """Units of ``metric`` per second over [t0, t1)."""
        if t1 <= t0:
            return 0.0
        total = sum(
            payload["n"]
            for _t, _k, payload in self.events.filter(
                kind="count", t0=t0, t1=t1, metric=metric
            )
        )
        return total * 1e9 / (t1 - t0)

    # -- psbox ---------------------------------------------------------------------

    def create_psbox(self, components):
        """psbox_create(): bind a new power sandbox to hardware components."""
        from repro.core.psbox import PowerSandbox

        return PowerSandbox(self.kernel, self, components=components)

    def __repr__(self):
        return "App({!r}, id={})".format(self.name, self.id)
