"""WiFi benchmark apps: browser (Links), scp, wget.

All three transmit through the fair packet scheduler.  Transmit units are
aggregated bursts (A-MPDU-scale, tens of KB), not MTU frames, so multi-MB
transfers finish within the few simulated seconds the experiments run.  The
paper's 50 MB files are scaled down accordingly (documented in DESIGN.md);
throughput axes stay in KB/s.
"""

from repro.apps.base import App
from repro.kernel.actions import SendPacket, Sleep, WaitAll, WaitOutstanding
from repro.sim.clock import from_msec


def wifi_browser(kernel, name="wbrowser", pages=1, weight=1.0):
    """A text browser loading a page: a few request/response bursts."""
    app = App(kernel, name, weight=weight)
    rng = kernel.sim.rng.stream("app.{}.{}".format(name, app.id))

    def behavior():
        for _ in range(pages):
            for burst_packets in (2, 4, 3, 2):
                yield Sleep(from_msec(int(rng.uniform(15, 40))))
                for _ in range(burst_packets):
                    size = int(rng.uniform(16_000, 30_000))
                    yield SendPacket(size, wait=False)
                    app.count("kb", size / 1024.0)
                yield WaitAll()
            app.count("pages", 1)

    app.spawn(behavior(), name=name + ".net")
    return app


def scp(kernel, name="scp", total_bytes=2_500_000, chunk=32_000, weight=1.0):
    """Bulk encrypted copy: a steady serialized stream of chunks."""
    app = App(kernel, name, weight=weight)

    def behavior():
        sent = 0
        while sent < total_bytes:
            size = min(chunk, total_bytes - sent)
            yield SendPacket(size, wait=True)
            sent += size
            app.count("kb", size / 1024.0)

    app.spawn(behavior(), name=name + ".net")
    return app


def wget(kernel, name="wget", total_bytes=2_500_000, chunk=48_000,
         window=6, weight=1.0):
    """Bulk HTTP transfer: a sliding window of in-flight chunks."""
    app = App(kernel, name, weight=weight)

    def behavior():
        sent = 0
        while sent < total_bytes:
            size = min(chunk, total_bytes - sent)
            yield SendPacket(size, wait=False)
            sent += size
            yield WaitOutstanding(window)
            app.count("kb", size / 1024.0)
        yield WaitAll()

    app.spawn(behavior(), name=name + ".net")
    return app
