"""Website fingerprinting through GPU power (§2.5), with and without psbox.

The victim browser opens one of the ten synthetic websites; the attacker
app executes a light GPU camouflage workload while observing power.  In the
state-of-the-art world the attacker's observation is its *accounted power
share* (usage-proportional per-sample accounting) — which, thanks to power
entanglement, carries the victim's workload signature.  Under psbox, the
attacker may only observe power through its own sandbox, which insulates
the victim's impacts and collapses the attack to random guessing.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.accounting import PerSampleUsageAccounting
from repro.apps.base import App
from repro.apps.websites import WEBSITES, browse_website
from repro.hw.platform import Platform
from repro.kernel.actions import Sleep, SubmitAccel
from repro.kernel.kernel import Kernel
from repro.sidechannel.dtw import dtw_distance
from repro.sim.clock import MSEC, from_msec, from_usec


@dataclass
class AttackResult:
    """Outcome of a fingerprinting campaign."""

    trials: int
    correct: int
    n_sites: int
    confusion: dict = field(default_factory=dict)

    @property
    def success_rate(self):
        return self.correct / self.trials if self.trials else 0.0

    @property
    def random_rate(self):
        return 1.0 / self.n_sites if self.n_sites else 0.0

    @property
    def advantage(self):
        """Success as a multiple of random guessing (paper: 6x)."""
        return self.success_rate / self.random_rate if self.n_sites else 0.0


def _znorm(values):
    arr = np.asarray(values, dtype=np.float64)
    std = arr.std()
    if std < 1e-12:
        return arr - arr.mean()
    return (arr - arr.mean()) / std


def _camouflage(app):
    """The attacker's light GPU workload: tiny frequent draws.

    Frequent submissions keep the attacker co-resident on the GPU most of
    the time, so its accounted share samples the victim's entangled power
    densely."""
    rng = app.kernel.sim.rng.stream("attacker.{}".format(app.id))

    def behavior():
        while True:
            yield SubmitAccel("gpu", "camo", 0.10e6, 0.10, wait=True)
            yield Sleep(from_usec(int(rng.uniform(250, 550))))

    return behavior()


def _attacker_postprocess(watts):
    """Attacker-side cleanup: fill unobserved (zero-share) bins by linear
    interpolation, then smooth with a short moving average."""
    arr = np.asarray(watts, dtype=np.float64).copy()
    nonzero = np.flatnonzero(arr > 1e-9)
    if len(nonzero) >= 2:
        idx = np.arange(len(arr))
        arr = np.interp(idx, nonzero, arr[nonzero])
    return _smooth(arr)


def _smooth(arr, k=3):
    if len(arr) < k:
        return arr
    kernel = np.ones(k) / k
    return np.convolve(arr, kernel, mode="same")


class WebsiteFingerprinter:
    """Train-and-infer website fingerprinting over GPU power traces."""

    def __init__(self, sites=None, sample_dt=2 * MSEC,
                 trace_duration=from_msec(650), dtw_window=30):
        self.sites = tuple(sites) if sites else tuple(WEBSITES)
        self.sample_dt = sample_dt
        self.trace_duration = trace_duration
        self.dtw_window = dtw_window
        self.templates = {}

    # -- training -----------------------------------------------------------------

    def train(self, seed=100):
        """Record one labelled power trace per site.

        The victim browser runs "alone" (no third apps); the attacker is of
        course present, observing through the same pipeline it will attack
        with — so templates and attack traces share structure.
        """
        for offset, site in enumerate(self.sites):
            observed = self.observe(site, seed + offset, use_psbox=False)
            self.templates[site] = _znorm(observed)
        return self

    # -- one attack trial ---------------------------------------------------------------

    def observe(self, site, seed, use_psbox):
        """Co-run victim + attacker; return the attacker's observed trace."""
        platform = Platform.full(seed=seed)
        kernel = Kernel(platform)
        attacker = App(kernel, "attacker")
        attacker.spawn(_camouflage(attacker), name="attacker.camo")
        psbox = None
        if use_psbox:
            psbox = attacker.create_psbox(("gpu",))
            psbox.enter()
        victim = browse_website(kernel, site)
        platform.sim.run(until=self.trace_duration)
        if use_psbox:
            _times, watts = psbox.sample("gpu", 0, self.trace_duration,
                                         self.sample_dt)
            return _attacker_postprocess(watts)
        accounting = PerSampleUsageAccounting(platform, "gpu",
                                              dt=self.sample_dt)
        _times, shares = accounting.shares(
            [attacker.id, victim.id], 0, self.trace_duration
        )
        return _attacker_postprocess(shares[attacker.id])

    def infer(self, observed):
        """1-NN DTW classification against the trained templates."""
        if not self.templates:
            raise RuntimeError("train() first")
        trace = _znorm(observed)
        best_site, best_cost = None, None
        for site, template in self.templates.items():
            cost = dtw_distance(trace, template, window=self.dtw_window)
            if best_cost is None or cost < best_cost:
                best_site, best_cost = site, cost
        return best_site

    # -- full campaign -----------------------------------------------------------------------

    def run(self, trials_per_site=3, use_psbox=False, seed=1000):
        """Attack every site ``trials_per_site`` times; tally successes."""
        if not self.templates:
            self.train()
        confusion = {}
        correct = 0
        trials = 0
        for site_idx, site in enumerate(self.sites):
            for trial in range(trials_per_site):
                trial_seed = seed + 97 * site_idx + trial
                observed = self.observe(site, trial_seed, use_psbox)
                predicted = self.infer(observed)
                confusion[(site, predicted)] = (
                    confusion.get((site, predicted), 0) + 1
                )
                correct += predicted == site
                trials += 1
        return AttackResult(trials=trials, correct=correct,
                            n_sites=len(self.sites), confusion=confusion)
