"""The GPU power side channel of §2.5 and its mitigation by psbox.

``dtw`` implements the dynamic-time-warping distance the paper's attacker
uses; ``attack`` implements the website-fingerprinting attacker itself:
train on labelled GPU power traces of a victim browser running alone, then
infer which site a co-running browser visits from the attacker's own power
observation.
"""

from repro.sidechannel.attack import AttackResult, WebsiteFingerprinter
from repro.sidechannel.dtw import dtw_distance

__all__ = ["AttackResult", "WebsiteFingerprinter", "dtw_distance"]
