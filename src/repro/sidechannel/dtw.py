"""Dynamic time warping for power-trace similarity (the paper cites [2]).

Classic O(n*m) dynamic programming with an optional Sakoe-Chiba band.
Implemented with a rolling numpy row so thousand-point traces compare in
milliseconds.
"""

import numpy as np


def dtw_distance(a, b, window=None):
    """DTW distance between two 1-D sequences.

    ``window``: Sakoe-Chiba band half-width (in samples); None = unbounded.
    Returns the accumulated absolute-difference cost along the optimal
    alignment path.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw_distance expects 1-D sequences")
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("dtw_distance expects non-empty sequences")
    if window is None:
        window = max(n, m)
    window = max(window, abs(n - m))

    inf = np.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, inf)
        lo = max(1, i - window)
        hi = min(m, i + window)
        costs = np.abs(a[i - 1] - b[lo - 1:hi])
        # cur[j] = costs[j-lo] + min(prev[j], prev[j-1], cur[j-1]);
        # the cur[j-1] dependency forces the inner scan.
        prev_slice = prev[lo:hi + 1]
        prev_diag = prev[lo - 1:hi]
        best_two = np.minimum(prev_slice, prev_diag)
        running = inf
        for offset in range(hi - lo + 1):
            running = costs[offset] + min(best_two[offset], running)
            cur[lo + offset] = running
        prev = cur
    return float(prev[m])
