#!/usr/bin/env python
"""Throughput-loss confinement (Figure 8), live.

Three identical calib3d instances co-run; halfway through, one enters its
power sandbox.  Watch the per-second throughput: only the sandboxed
instance slows down — the kernel bills every lost sharing opportunity to
it, so its neighbours keep their share.

Run:  python examples/fairness_confinement.py
"""

from repro import Kernel, Platform
from repro.apps import calib3d
from repro.sim import SEC


def main():
    platform = Platform.am57(seed=5)
    kernel = Kernel(platform)

    apps = [calib3d(kernel, name="calib3d{}".format(i + 1),
                    iterations=10_000) for i in range(3)]
    target = apps[-1]
    box = target.create_psbox(("cpu",))

    enter_at = 2 * SEC
    platform.sim.at(enter_at, box.enter)
    horizon = 4 * SEC

    print("three calib3d instances on two cores; calib3d3 enters its psbox "
          "at t=2s\n")
    print("{:>6} {:>12} {:>12} {:>12}".format(
        "t(s)", "calib3d1", "calib3d2", "calib3d3*"))
    window = SEC // 2
    for start in range(0, horizon, window):
        platform.sim.run(until=start + window)
        rates = [app.rate("kb", start, start + window) for app in apps]
        marker = "  <- in psbox" if start >= enter_at else ""
        print("{:>6.1f} {:>10.0f}KB {:>10.0f}KB {:>10.0f}KB{}".format(
            (start + window) / 1e9, *rates, marker))

    print("\nballoon windows held calib3d3's vertical slice for "
          "{:.0%} of the sandboxed period".format(
              box.vmeter.observed_fraction("cpu", enter_at, horizon)))
    print("its own observed energy over that period: {:.0f} mJ".format(
        box.vmeter.energy(enter_at, horizon) * 1000))


if __name__ == "__main__":
    main()
