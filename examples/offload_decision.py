#!/usr/bin/env python
"""Energy-aware offloading, decided by psbox probes (§2.1).

"Comparative power drives actions": to choose between running a kernel on
the CPU or offloading it to the DSP, the app measures both candidates'
energy through its own power sandbox — insulated from whatever else the
system is doing — and picks the cheaper one.  The decision flips with the
problem size: offload overhead dominates small items, DSP efficiency wins
on large ones.

Run:  python examples/offload_decision.py
"""

from repro import Kernel, Platform
from repro.apps.base import App
from repro.kernel.actions import Compute, Sleep, SubmitAccel
from repro.sim import SEC, from_msec

#: problem size -> (CPU cycles, DSP kernel cycles incl. marshalling)
WORKLOADS = {
    "small (64x64)": (2.0e6, 6.0e6),
    "medium (256x256)": (30.0e6, 28.0e6),
    "large (1024x1024)": (480.0e6, 210.0e6),
}
DSP_KERNEL_POWER = 0.6


def probe(kernel_size, strategy, seed=23):
    """Run one probe of ``strategy`` in a psbox; return joules per item."""
    platform = Platform.full(seed=seed)
    kernel = Kernel(platform)
    app = App(kernel, "probe")
    cpu_cycles, dsp_cycles = WORKLOADS[kernel_size]

    def behavior():
        if strategy == "cpu":
            yield Compute(cpu_cycles)
        else:
            # Marshalling on the CPU, then the DSP kernel.
            yield Compute(0.4e6)
            yield SubmitAccel("dsp", "offload", dsp_cycles,
                              DSP_KERNEL_POWER, wait=True)
        yield Sleep(from_msec(5))

    app.spawn(behavior())
    box = app.create_psbox(("cpu", "dsp"))
    box.enter()
    platform.sim.run(until=8 * SEC)
    assert app.finished
    return box.vmeter.energy(0, app.finished_at), app.finished_at / 1e9


def main():
    print("energy per item, measured through the app's own psbox:\n")
    print("{:<20} {:>12} {:>12}   {}".format(
        "problem size", "CPU (mJ)", "DSP (mJ)", "decision"))
    for size in WORKLOADS:
        cpu_joules, cpu_secs = probe(size, "cpu")
        dsp_joules, dsp_secs = probe(size, "dsp")
        winner = "run on CPU" if cpu_joules <= dsp_joules else "OFFLOAD"
        print("{:<20} {:>12.1f} {:>12.1f}   {}   "
              "(latency {:.0f} vs {:.0f} ms)".format(
                  size, cpu_joules * 1000, dsp_joules * 1000, winner,
                  cpu_secs * 1000, dsp_secs * 1000))
    print("\nBecause the probes are insulated, the decision is valid no "
          "matter\nwhat co-runs during probing — and it remains valid "
          "after leaving the\npsbox, since the vertical environment is "
          "preserved (§2.6).")


if __name__ == "__main__":
    main()
