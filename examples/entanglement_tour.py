#!/usr/bin/env python
"""A guided tour of power entanglement (the paper's §2.3, Figure 3).

Three short experiments show why dividing system power among apps is
fundamentally lossy — no matter how fast you sample — and one final
experiment shows the way out.

Run:  python examples/entanglement_tour.py
"""

from repro.analysis.report import format_series
from repro.experiments.fig3 import (
    run_fig3a_spatial,
    run_fig3b_requests,
    run_fig3c_lingering,
)


def main():
    print("1) SPATIAL CONCURRENCY — power does not compose across cores")
    print("   Run one process on core 0, then add an identical one on "
          "core 1:")
    a = run_fig3a_spatial()
    print(format_series(a.watts_two_instances,
                        label="   two instances      (W)"))
    print(format_series(a.watts_one_doubled,
                        label="   one instance, x2   (W)"))
    print("   Doubling the single-instance power overestimates reality by "
          "{:+.0f}%:".format(a.overestimate_pct))
    print("   static and uncore power are shared — there is no per-app "
          "share to measure.\n")

    print("2) BLURRY REQUEST BOUNDARIES — accelerators overlap requests")
    b = run_fig3b_requests()
    print(format_series(b.watts, label="   GPU power          (W)"))
    print("   Commands 1 and 2 were in flight together for {:.1f} ms; "
          "the rail shows\n   one entangled bump, not two attributable "
          "ones.\n".format(b.overlap_ns / 1e6))

    print("3) LINGERING POWER STATE — history changes the price of work")
    c = run_fig3c_lingering()
    print(format_series(c.watts_after_idle, label="   app after idle     (W)"))
    print(format_series(c.watts_after_busy, label="   app after busy     (W)"))
    print("   The same app costs {:+.0f}% more right after a busy period — "
          "the DVFS\n   governor's state outlives the workload that set "
          "it.\n".format(c.lingering_pct))

    print("4) THE WAY OUT — don't divide: insulate")
    print("   psbox gives an app exclusive, fine-grained resource balloons")
    print("   and a virtual power meter, so what it observes is its own")
    print("   power plus its vertical environment — reproducible, "
          "reasoned-about,\n   and useless to eavesdroppers.  See "
          "examples/quickstart.py.")


if __name__ == "__main__":
    main()
