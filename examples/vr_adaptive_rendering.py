#!/usr/bin/env python
"""The end-to-end VR use case (§6.4 / Figure 9).

A gesture task with input-dependent load co-runs with a rendering task.
Rendering observes its own CPU power inside its psbox — insulated from
gesture — and trades fidelity for power against a budget.

Run:  python examples/vr_adaptive_rendering.py [budget_watts]
"""

import sys

from repro import Kernel, Platform
from repro.analysis.report import format_series
from repro.apps.vr import FIDELITY_LEVELS, VrApp
from repro.sim import MSEC, SEC


def main(budget_w=0.35):
    platform = Platform.am57(seed=17)
    kernel = Kernel(platform)
    duration = 4 * SEC

    vr = VrApp(kernel, budget_w=budget_w, fidelity=5, duration=duration)
    platform.sim.run(until=duration)

    print("power budget: {:.0f} mW".format(budget_w * 1000))
    print("fidelity levels: {} (period ms, cycles/frame)".format(
        [(p // MSEC, int(c)) for p, c in FIDELITY_LEVELS]))
    print("\nadaptation trace (observed power -> fidelity changes):")
    changes = dict(vr.fidelity_history)
    for t, watts in vr.power_history:
        marker = ""
        if t in changes:
            marker = "  -> fidelity {}".format(changes[t])
        print("  t={:5.2f}s  {:6.0f} mW{}".format(t / 1e9, watts * 1000,
                                                  marker))

    times, watts = vr.psbox.sample("cpu", 0, duration, dt=MSEC)
    print()
    print(format_series(watts, label="rendering power (psbox view, W)"))
    _t, total = platform.meter.sample("cpu", 0, duration, MSEC)
    print(format_series(total, label="total CPU rail power        (W)"))

    frames = vr.render_app.counters.get("render_frames", 0)
    print("\nsteady fidelity {} | {} frames rendered | gesture frames {}"
          .format(vr.fidelity, frames,
                  vr.gesture_app.counters.get("gesture_frames", 0)))
    vr.stop()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.35)
