#!/usr/bin/env python
"""The GPU power side channel (§2.5), demonstrated and then mitigated.

An attacker app with a light camouflage workload infers which website a
co-running browser is visiting, from nothing but its own power observation.
Under the existing approach its accounted power share carries the victim's
entangled signature; under psbox the observation is insulated and the
attack collapses toward random guessing.

Run:  python examples/sidechannel_attack.py [trials_per_site]
"""

import sys

from repro.apps.websites import WEBSITES
from repro.sidechannel.attack import WebsiteFingerprinter


def main(trials_per_site=2):
    print("training the attacker on {} websites...".format(len(WEBSITES)))
    fingerprinter = WebsiteFingerprinter().train()

    print("attacking WITHOUT psbox (accounted power shares)...")
    open_world = fingerprinter.run(trials_per_site=trials_per_site,
                                   use_psbox=False)
    print("  success: {}/{} = {:.0%}  ({:.1f}x random guessing)".format(
        open_world.correct, open_world.trials, open_world.success_rate,
        open_world.advantage))

    print("attacking WITH psbox (insulated virtual power meter)...")
    sandboxed = fingerprinter.run(trials_per_site=trials_per_site,
                                  use_psbox=True)
    print("  success: {}/{} = {:.0%}  ({:.1f}x random guessing)".format(
        sandboxed.correct, sandboxed.trials, sandboxed.success_rate,
        sandboxed.advantage))

    print("\nmis-classifications without psbox (victim -> guess):")
    for (actual, guessed), count in sorted(open_world.confusion.items()):
        if actual != guessed:
            print("  {:<10} -> {:<10} x{}".format(actual, guessed, count))

    factor = (open_world.success_rate / sandboxed.success_rate
              if sandboxed.success_rate else float("inf"))
    print("\npsbox cut the attack's success rate by {:.1f}x".format(factor))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
