#!/usr/bin/env python
"""Power events over psbox observations (§8.2's sensor-style API).

An app with alternating quiet/busy phases registers three predicates over
its own insulated power — "high power", "spike", "power keeps increasing"
— exactly the way today's apps register accelerometer listeners.

Run:  python examples/power_events.py
"""

from repro import Kernel, Platform
from repro.apps.base import App
from repro.core.events import (
    MonotonicIncrease,
    PowerEventMonitor,
    SpikeDetected,
    ThresholdAbove,
)
from repro.kernel.actions import Compute, Sleep
from repro.sim import SEC, from_msec


def main():
    platform = Platform.am57(seed=8)
    kernel = Kernel(platform)
    app = App(kernel, "bursty")

    def behavior():
        intensity = 1.0
        while True:
            yield Sleep(from_msec(250))
            deadline = kernel.now + from_msec(200)
            while kernel.now < deadline:
                yield Compute(2e6 * intensity)
            intensity = min(intensity + 0.5, 3.0)   # each burst heavier

    app.spawn(behavior())
    box = app.create_psbox(("cpu",))
    box.enter()

    monitor = PowerEventMonitor(box, period=from_msec(25)).start()

    def announce(tag):
        def callback(t, payload):
            detail = ", ".join(
                "{}={:.2f}".format(k, v) for k, v in payload.items()
            )
            print("  t={:5.2f}s  {:<18} {}".format(t / 1e9, tag, detail))
        return callback

    monitor.subscribe(ThresholdAbove(1.5, min_samples=2),
                      announce("HIGH POWER"))
    monitor.subscribe(SpikeDetected(factor=3.0, window=6),
                      announce("POWER SPIKE"))
    monitor.subscribe(MonotonicIncrease(n=4, tolerance_w=0.01),
                      announce("POWER CREEP"))

    print("power events observed by the app inside its psbox:")
    platform.sim.run(until=3 * SEC)
    monitor.stop()
    print("\n{} events over 3 s; the app could now throttle itself, "
          "shed work, or re-plan.".format(len(monitor.events)))


if __name__ == "__main__":
    main()
