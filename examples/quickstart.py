#!/usr/bin/env python
"""Quickstart: observe an app's insulated power with a PowerSandbox.

Boots the simulated AM57-like board, runs calib3d next to a noisy
bodytrack, and shows the difference between what the psbox reports (the
app + its vertical environment, insulated) and what legacy per-sample
accounting attributes to the same app.

Run:  python examples/quickstart.py
"""

from repro import Kernel, Platform
from repro.accounting import PerSampleUsageAccounting
from repro.analysis.report import format_series
from repro.apps import bodytrack, calib3d
from repro.sim import MSEC, SEC


def main():
    platform = Platform.am57(seed=1)
    kernel = Kernel(platform)

    # The power-aware app and a noisy neighbour.
    app = calib3d(kernel, iterations=40)
    noisy = bodytrack(kernel, iterations=300)

    # psbox_create + psbox_enter (Listing 1 of the paper).
    box = app.create_psbox(components=("cpu",))
    box.enter()

    platform.sim.run(until=4 * SEC)
    end = app.finished_at
    print("calib3d finished after {:.2f}s of simulated time".format(end / 1e9))

    # psbox_read: accumulated energy of the app in its vertical slice.
    joules = box.vmeter.energy(0, end)
    print("psbox observation : {:6.1f} mJ".format(joules * 1000))

    # psbox_sample: timestamped power samples (here at 1 ms for display).
    times, watts = box.sample(t0=0, t1=end, dt=MSEC)
    print(format_series(watts, label="psbox power (W)"))

    # What the existing approach would have attributed to the same app.
    accounting = PerSampleUsageAccounting(platform, "cpu")
    share = accounting.energies([app.id, noisy.id], 0, end)[app.id]
    print("accounting share  : {:6.1f} mJ".format(share * 1000))
    print("system rail total : {:6.1f} mJ".format(
        platform.meter.energy("cpu", 0, end) * 1000))

    box.leave()
    print("\nRe-run with bodytrack removed and the psbox number barely "
          "moves; the accounting share does. That is the paper's point.")


if __name__ == "__main__":
    main()
